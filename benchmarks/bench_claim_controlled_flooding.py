"""A9 (§2 related work) — controlled flooding: works, until it doesn't.

Burch & Cheswick's tracer against the same single-attacker flood under
deterministic vs congestion-adaptive routing, with the collateral cost the
paper warns about ("further worsen the situation") measured on a bystander
flow.
"""

import numpy as np

from repro.attack.flows import FlowSpec, schedule_flow
from repro.defense.controlled_flooding import ControlledFloodingTracer
from repro.network import Fabric
from repro.routing import DimensionOrderRouter, LeastCongestedPolicy, MinimalAdaptiveRouter
from repro.topology import Mesh
from repro.util.tables import TextTable


def _run(router_name):
    topology = Mesh((5, 5))
    if router_name == "xy":
        fabric = Fabric(topology, DimensionOrderRouter())
    else:
        fabric = Fabric(topology, MinimalAdaptiveRouter())
        fabric.selection = LeastCongestedPolicy(fabric.congestion,
                                                np.random.default_rng(0))
    victim = topology.index((2, 2))
    # Diagonal placement: adaptive routing then has genuine path diversity
    # (a row-aligned pair has a unique minimal path even when adaptive).
    attacker = topology.index((0, 0))
    rng = np.random.default_rng(1)
    attack = schedule_flow(fabric, FlowSpec(attacker, victim, rate=40.0,
                                            duration=2000.0), rng)
    ids = {p.packet_id for p in attack}
    bystander = schedule_flow(fabric, FlowSpec(topology.index((2, 1)),
                                               topology.index((2, 3)),
                                               rate=5.0, duration=2000.0), rng)
    tracer = ControlledFloodingTracer(fabric, victim,
                                      lambda p: p.packet_id in ids)
    fabric.run_until(2.0)
    baseline_latency = fabric.latency.mean
    path = tracer.trace(max_hops=5)
    worst = max((p.latency for p in bystander
                 if p.latency is not None and p.delivered_at > 2.0),
                default=float("nan"))
    return {
        "found_attacker": path[-1] == attacker,
        "trace_depth": len(path) - 1,
        "probe_packets": tracer.probes_sent,
        "bystander_latency_blowup": worst / baseline_latency,
    }


def test_claim_a9_controlled_flooding(benchmark, report):
    def measure():
        return [(name, _run(name)) for name in ("xy", "minimal-adaptive")]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["routing", "attacker found", "trace depth",
                       "probe packets injected", "bystander latency blowup"])
    for name, out in rows:
        table.add_row([name, "yes" if out["found_attacker"] else "NO",
                       out["trace_depth"], out["probe_packets"],
                       f"{out['bystander_latency_blowup']:.1f}x"])
    report("Claim A9 (section 2) - controlled-flooding traceback",
           table.render())

    results = dict(rows)
    assert results["xy"]["found_attacker"]                # works when stable
    assert not results["minimal-adaptive"]["found_attacker"]  # defeated
    # "Further worsen the situation": probing multiplies bystander latency.
    assert results["xy"]["bystander_latency_blowup"] > 3.0
    assert results["xy"]["probe_packets"] > 1000
