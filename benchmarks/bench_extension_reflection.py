"""E6 — declarative attack scenarios: identification beyond plain floods.

The paper scores marking schemes against first-generation spoofed floods
only. The scenario layer (:mod:`repro.attack.scenario`) expresses attack
shapes whose traffic the victim sees very differently:

* **reflection/amplification** — attackers send small spoofed requests to
  reflector nodes; the victim only ever receives the amplified *replies*,
  so path marks accumulate reflector→victim and marking-based
  identification converges on the reflector set while the true sources
  stay invisible;
* **pulsing (shrew)** — short on-bursts whose long-run mean slips under
  rate thresholds, thinning the mark stream;
* **mixed benign** — a flood diluted by Poisson background and honest
  request/reply sessions whose replies also carry marks.

This series runs DDPM, full-path PPM, and DPM against each scenario on an
adaptive-routing torus and reports identification accuracy against *both*
ground-truth sets (true sources and reflectors) plus first-suspect
latency.
"""

from repro import Cluster, registry
from repro.attack.scenario import (
    AttackCampaign,
    FloodAttackSpec,
    PoissonBackgroundSpec,
    PulsingAttackSpec,
    ReflectionAmplificationSpec,
    RequestReplySessionSpec,
    VolumetricMixSpec,
)
from repro.defense.metrics import score_identification
from repro.routing import FullyAdaptiveRouter
from repro.topology import Torus
from repro.util.tables import TextTable

SCHEMES = ("ddpm", "ppm-full", "dpm")
SEED = 2026
DURATION = 3.0


def _campaign(name):
    """The three studied scenarios, each with a benign noise floor."""
    if name == "reflection":
        return AttackCampaign((
            ReflectionAmplificationSpec(num_attackers=2, num_reflectors=4,
                                        request_rate=25.0, amplification=4,
                                        duration=DURATION),
            PoissonBackgroundSpec(rate=1.0, duration=DURATION),
        ))
    if name == "pulsing":
        return AttackCampaign((
            PulsingAttackSpec(num_attackers=3, rate_per_attacker=120.0,
                              period=1.0, duty_cycle=0.2, duration=DURATION),
            PoissonBackgroundSpec(rate=1.0, duration=DURATION),
        ))
    if name == "mixed-benign":
        return AttackCampaign((
            VolumetricMixSpec(
                components=(
                    FloodAttackSpec(num_attackers=3, rate_per_attacker=40.0,
                                    duration=DURATION),
                    PoissonBackgroundSpec(rate=2.0, duration=DURATION),
                ),
                weights=(1.0, 1.0)),
            RequestReplySessionSpec(session_rate=0.5, duration=DURATION),
        ))
    raise ValueError(name)


def _run(scheme_name, scenario, seed=SEED):
    """One scheme x scenario cell; returns truth, suspects, latency."""
    import numpy as np

    from repro.core.experiment import _victim_analysis_for
    from repro.defense.identification import IdentificationPipeline

    topology = Torus((6, 6))
    marking = registry.MARKING.create(
        scheme_name, np.random.default_rng(seed), topology, 0.1)
    cluster = Cluster(topology, FullyAdaptiveRouter(), marking=marking,
                      seed=seed)
    victim = cluster.default_victim()
    # Scheme-appropriate analysis, exactly as run_identification_experiment
    # wires it (DPM gets its stable-route signature table).
    analysis = _victim_analysis_for(cluster, victim)
    pipeline = IdentificationPipeline(cluster.fabric, victim, analysis)
    truth = cluster.launch_attacks(_campaign(scenario), victim=victim)
    cluster.run()
    return truth, pipeline.suspects(), pipeline.first_suspect_time


def test_extension_reflection_scenarios(benchmark, report):
    def measure():
        cells = []
        for scenario in ("reflection", "pulsing", "mixed-benign"):
            for scheme in SCHEMES:
                truth, suspects, latency = _run(scheme, scenario)
                vs_sources = score_identification(suspects, truth.attackers)
                vs_reflectors = (score_identification(suspects,
                                                      truth.reflectors)
                                 if truth.reflectors else None)
                cells.append((scenario, scheme, truth, suspects,
                              vs_sources, vs_reflectors, latency))
        return cells

    cells = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["scenario", "scheme", "suspects",
                       "recall vs sources", "recall vs reflectors",
                       "precision", "first suspect at"])
    for scenario, scheme, truth, suspects, src, refl, latency in cells:
        target = refl if refl is not None else src
        table.add_row([
            scenario, scheme, len(suspects),
            f"{src.recall:.2f}",
            f"{refl.recall:.2f}" if refl is not None else "-",
            f"{target.precision:.2f}",
            f"{latency:.3f}" if latency is not None else "never",
        ])
    lines = [table.render(), ""]
    sample = next(c for c in cells if c[0] == "reflection")
    truth = sample[2]
    lines.append(f"reflection ground truth: true sources "
                 f"{sorted(truth.attackers)}, reflectors "
                 f"{sorted(truth.reflectors)}, victim {truth.victim}")
    lines.append("Reading: under reflection the victim sees only the "
                 "amplified reply path, so marking identifies reflectors — "
                 "DDPM finds the exact reflector set and never the spoofing "
                 "true sources; DPM's signature ambiguity under adaptive "
                 "routing implicates a quarter of the fabric, hitting true "
                 "sources only by collision. Blocking must target "
                 "reflectors (or trace the request path separately).")
    report("Extension E6 - identification under reflection, pulsing, and "
           "mixed-benign scenarios (6x6 adaptive torus)", "\n".join(lines))

    by_cell = {(scenario, scheme): (truth, suspects, src, refl, latency)
               for scenario, scheme, truth, suspects, src, refl, latency
               in cells}

    # Reflection: every scheme sees only reply-path marks and produces
    # suspects (DPM via its stable-route signature table, which adaptive
    # routing makes ambiguous — the A2/A3 criticism — so it may implicate
    # innocents, including by collision a true source).
    for scheme in SCHEMES:
        truth, suspects, src, refl, latency = by_cell[("reflection", scheme)]
        assert suspects, f"{scheme} produced no suspects under reflection"
        assert set(suspects) & set(truth.reflectors), (
            f"{scheme} should implicate at least one reflector")
    # DDPM decodes single paths exactly: the full reflector set is found,
    # the spoofing true sources never are, and any extra suspects are
    # honest background senders (exact decode flags every source that
    # reached the victim), not attackers.
    truth, suspects, src, refl, latency = by_cell[("reflection", "ddpm")]
    assert src.recall == 0.0
    assert refl.recall == 1.0
    assert set(suspects).isdisjoint(truth.attackers)
    assert latency is not None

    # Pulsing still delivers enough marked on-burst packets for DDPM.
    truth, suspects, src, _, latency = by_cell[("pulsing", "ddpm")]
    assert src.recall == 1.0
    assert latency is not None

    # Mixed benign: DDPM finds every flooder; honest reply traffic may add
    # suspects but the true sources are all present.
    truth, suspects, src, _, _ = by_cell[("mixed-benign", "ddpm")]
    assert src.recall == 1.0
