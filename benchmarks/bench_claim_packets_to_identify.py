"""A6 — "The victim needs only one packet to identify the source" (§5).

Measures the packets-to-identify distribution per scheme on the same
deterministic flow: DDPM identifies at the first packet, always; PPM needs
hundreds (coupon-collecting marks); DPM identifies at the first packet only
up to signature ambiguity (the suspect set includes innocents).
"""

import numpy as np

from repro.defense.metrics import packets_until_identified, score_identification
from repro.marking import DdpmScheme, FullIndexEncoder, PpmScheme
from repro.marking.dpm import DpmScheme, build_signature_table
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import DimensionOrderRouter, walk_route
from repro.topology import Mesh
from repro.util.tables import TextTable


def _packet_stream(topology, scheme, src, dst, count):
    router = DimensionOrderRouter()
    path = walk_route(topology, router, src, dst, lambda c, cur: c[0])
    for _ in range(count):
        packet = Packet(IPHeader(1, 2), src, dst)
        scheme.on_inject(packet, src)
        for u, v in zip(path[:-1], path[1:]):
            # Mirror the switch pipeline: TTL decrements before marking
            # (position-relevant for DPM).
            packet.header.decrement_ttl()
            scheme.on_hop(packet, u, v)
        yield packet


def test_claim_a6_packets_to_identify(benchmark, report):
    def measure():
        topology = Mesh((6, 6))
        src, victim = 0, topology.num_nodes - 1
        rows = []

        ddpm = DdpmScheme()
        ddpm.attach(topology)
        rows.append(("ddpm", packets_until_identified(
            ddpm.new_victim_analysis(victim),
            _packet_stream(topology, ddpm, src, victim, 50), {src}), "exact"))

        needed = []
        for seed in range(5):
            ppm = PpmScheme(FullIndexEncoder(), 0.1,
                            np.random.default_rng(seed))
            ppm.attach(Mesh((6, 6)))
            needed.append(packets_until_identified(
                ppm.new_victim_analysis(victim),
                _packet_stream(Mesh((6, 6)), ppm, src, victim, 20000),
                {src}, check_every=20))
        rows.append(("ppm-full (p=0.1, median of 5)",
                     sorted(needed)[len(needed) // 2], "exact"))

        dpm = DpmScheme()
        dpm.attach(topology)
        table = build_signature_table(dpm, topology, DimensionOrderRouter(),
                                      victim, 64)
        analysis = dpm.new_victim_analysis(victim, table)
        first = packets_until_identified(
            analysis, _packet_stream(topology, dpm, src, victim, 50), {src})
        score = score_identification(analysis.suspects(), {src})
        rows.append(("dpm (+signature table)", first,
                     f"ambiguous: {len(analysis.suspects())} suspects, "
                     f"precision {score.precision:.2f}"))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["scheme", "packets to cover true source", "quality"])
    for row in rows:
        table.add_row(row)
    report("Claim A6 - packets needed to identify one source "
           "(6x6 mesh, deterministic route)", table.render())

    by_scheme = {name: needed for name, needed, _ in rows}
    assert by_scheme["ddpm"] == 1                       # the §5 claim
    assert by_scheme["ppm-full (p=0.1, median of 5)"] > 20
    assert by_scheme["dpm (+signature table)"] is not None


def test_claim_a6_one_packet_across_many_pairs(benchmark, report):
    """Single-packet exactness for 200 random (src, dst) pairs."""

    def measure():
        topology = Mesh((8, 8))
        scheme = DdpmScheme()
        scheme.attach(topology)
        rng = np.random.default_rng(3)
        exact = 0
        trials = 200
        for _ in range(trials):
            src, dst = rng.integers(64, size=2)
            if src == dst:
                exact += 1
                continue
            packet = next(_packet_stream(topology, scheme, int(src), int(dst), 1))
            analysis = scheme.new_victim_analysis(int(dst))
            analysis.observe(packet)
            if analysis.suspects() == frozenset({int(src)}):
                exact += 1
        return exact, trials

    exact, trials = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("Claim A6 - one-packet exactness over random pairs",
           f"{exact}/{trials} pairs identified exactly from a single packet")
    assert exact == trials
