"""F4 — the Figure 4 algorithm's guarantee, measured at scale.

Single-packet identification must be exact on every topology family under
every routing algorithm, including non-minimal and randomized ones. Also
times the per-hop marking operation itself — Figure 4 is the per-switch
datapath, so its cost is the scheme's hardware story.
"""

import numpy as np

from repro.marking import DdpmScheme
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import (
    DimensionOrderRouter,
    FullyAdaptiveRouter,
    MinimalAdaptiveRouter,
    RandomPolicy,
    ValiantRouter,
    walk_route,
)
from repro.topology import Hypercube, Mesh, Torus
from repro.util.tables import TextTable


def _identify_rate(topology, router, select, trials, rng, budget=6):
    scheme = DdpmScheme()
    scheme.attach(topology)
    exact = 0
    for _ in range(trials):
        src, dst = rng.integers(topology.num_nodes, size=2)
        if src == dst:
            exact += 1
            continue
        path = walk_route(topology, router, int(src), int(dst), select,
                          misroute_budget=budget, max_hops=400)
        packet = Packet(IPHeader(1, 2), int(src), int(dst))
        scheme.on_inject(packet, int(src))
        for u, v in zip(path[:-1], path[1:]):
            scheme.on_hop(packet, u, v)
        if scheme.identify(packet, int(dst)) == src:
            exact += 1
    return exact / trials


def test_figure4_exactness_matrix(benchmark, report):
    def matrix():
        rng = np.random.default_rng(0)
        select = RandomPolicy(rng).binder()
        rows = []
        for topo_name, topo in (("mesh 8x8", Mesh((8, 8))),
                                ("torus 8x8", Torus((8, 8))),
                                ("hypercube 2^6", Hypercube(6))):
            for router_name, router in (
                ("dimension-order", DimensionOrderRouter()),
                ("minimal-adaptive", MinimalAdaptiveRouter()),
                ("fully-adaptive", FullyAdaptiveRouter(prefer_minimal=False)),
                ("valiant", ValiantRouter(np.random.default_rng(1))),
            ):
                rate = _identify_rate(topo, router, select, 60, rng)
                rows.append((topo_name, router_name, rate))
        return rows

    rows = benchmark.pedantic(matrix, rounds=1, iterations=1)
    table = TextTable(["topology", "routing", "single-packet exactness"])
    for topo_name, router_name, rate in rows:
        table.add_row([topo_name, router_name, f"{rate:.0%}"])
    report("Figure 4 - DDPM single-packet identification matrix", table.render())
    assert all(rate == 1.0 for _, _, rate in rows)


def test_figure4_per_hop_cost(benchmark, report):
    """Time the raw on_hop datapath: the §6.2 'simple functions' claim."""
    mesh = Mesh((16, 16))
    scheme = DdpmScheme()
    scheme.attach(mesh)
    path = walk_route(mesh, DimensionOrderRouter(), 0, mesh.num_nodes - 1,
                      lambda c, cur: c[0])
    hops = list(zip(path[:-1], path[1:]))

    def mark_one_packet():
        packet = Packet(IPHeader(1, 2), 0, mesh.num_nodes - 1)
        scheme.on_inject(packet, 0)
        for u, v in hops:
            scheme.on_hop(packet, u, v)
        return packet.header.identification

    word = benchmark(mark_one_packet)
    report("Figure 4 cost - full-path DDPM marking on a 16x16 mesh",
           f"{len(hops)} hops marked per call; final MF word 0x{word:04x}\n"
           "(per-hop cost is this benchmark's mean time / 30)")
    assert scheme.layout.decode(word) == mesh.distance_vector(0, mesh.num_nodes - 1)
