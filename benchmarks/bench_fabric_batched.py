"""Simulator-engineering benchmark: batched cohort-engine throughput.

Companion to ``bench_fabric_throughput.py`` (the exact per-packet engine's
regression guard): measures the ``engine='batched'`` cohort-advance path on
two workloads and writes ``benchmarks/results/BENCH_throughput_batched.json``
for ``check_throughput.py``:

* ``matched`` — the *same* workload shape as the exact benchmark (8x8 torus,
  uniform Poisson background at rate 25 for 2 time units, adaptive routing,
  DDPM marking), so the two JSON artifacts are directly comparable. The
  check script enforces the batched mode's reason to exist here: >= 10x the
  exact engine's packets/s (tolerance-scaled; see ``check_throughput.py``).
* ``torus64`` — a 64x64-torus DDoS flood plus background under a
  :class:`~repro.engine.watchdog.Watchdog`, the scale target the cohort
  engine was built for. Gated on completing at all (a per-packet engine
  takes minutes here); its packets/s is regression-checked against the
  committed baseline like every other metric.

Workload generation uses the columnar bulk path
(:func:`~repro.attack.traffic.schedule_background_bulk`) — the point of the
batched mode is that *no* stage is per-packet Python, injection included.
"""

import json
from pathlib import Path

import numpy as np

from repro.attack.traffic import (UniformRandomPattern, schedule_background,
                                  schedule_background_bulk)
from repro.core.cluster import Cluster
from repro.engine.watchdog import Watchdog
from repro.marking import DdpmScheme
from repro.network.colqueue import BatchedFabric
from repro.routing import (LeastCongestedPolicy, MinimalAdaptiveRouter)
from repro.topology import Torus

RESULTS_JSON = Path(__file__).parent / "results" / "BENCH_throughput_batched.json"


def _merge_results(key, entry):
    """Read-modify-write one section of the shared results artifact."""
    RESULTS_JSON.parent.mkdir(exist_ok=True)
    data = (json.loads(RESULTS_JSON.read_text())
            if RESULTS_JSON.exists() else {})
    data[key] = entry
    RESULTS_JSON.write_text(json.dumps(data, indent=2) + "\n")


def _build_matched_fabric(seed=0):
    """The exact benchmark's workload, captured columnarly."""
    topology = Torus((8, 8))
    fabric = BatchedFabric(topology, MinimalAdaptiveRouter(),
                           marking=DdpmScheme())
    fabric.selection = LeastCongestedPolicy(fabric.congestion,
                                            np.random.default_rng(seed))
    rng = np.random.default_rng(seed + 1)
    schedule_background_bulk(fabric, UniformRandomPattern(), rate=25.0,
                             duration=2.0, rng=rng)
    return fabric


def test_batched_fabric_throughput(benchmark, report):
    def run():
        fabric = _build_matched_fabric()
        fabric.run()
        return fabric.counters["delivered"], fabric.sim.events_executed

    delivered, rounds = benchmark(run)
    mean_s = benchmark.stats.stats.mean
    report("Engineering - batched cohort engine throughput (64-node torus, "
           "adaptive routing, DDPM marking)",
           f"{delivered} packets delivered across {rounds} cohort rounds per "
           f"run; {delivered / mean_s:,.0f} packets/s (wall clock) vs the "
           "exact engine's committed baseline in BENCH_throughput.json")
    _merge_results("matched", {
        "delivered": int(delivered),
        "rounds": int(rounds),
        "mean_seconds": mean_s,
        "packets_per_sec": delivered / mean_s,
    })
    assert delivered > 0 and rounds > 0


def test_batched_fabric_torus64_flood(benchmark, report):
    """64x64 adaptive-torus flood: the scale the cohort engine targets."""

    def run():
        watchdog = Watchdog(wall_clock_limit=300.0)
        cluster = Cluster(Torus((64, 64)), MinimalAdaptiveRouter(),
                          marking=DdpmScheme(), seed=0, engine="batched",
                          watchdog=watchdog)
        victim = cluster.default_victim()
        cluster.launch_ddos(victim=victim, num_attackers=16,
                            attack_rate_per_node=100.0, duration=2.0)
        schedule_background_bulk(cluster.fabric, UniformRandomPattern(),
                                 rate=2.0, duration=2.0,
                                 rng=np.random.default_rng(1))
        cluster.run()
        fabric = cluster.fabric
        return (fabric.counters["delivered"], fabric.counters["dropped"],
                fabric.sim.events_executed)

    delivered, dropped, rounds = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    mean_s = benchmark.stats.stats.mean
    report("Engineering - batched cohort engine at scale (4096-node torus "
           "flood, adaptive routing, DDPM marking)",
           f"{delivered} delivered / {dropped} dropped across {rounds} "
           f"cohort rounds in {mean_s:.2f}s; "
           f"{delivered / mean_s:,.0f} packets/s (wall clock)")
    _merge_results("torus64", {
        "delivered": int(delivered),
        "dropped": int(dropped),
        "rounds": int(rounds),
        "mean_seconds": mean_s,
        "packets_per_sec": delivered / mean_s,
    })
    assert delivered > 0


def test_bulk_background_matches_scalar_law(report):
    """Sanity: the bulk generator produces the scalar generator's workload.

    Not a timing benchmark — a statistical guard that the order-statistics
    construction in ``schedule_background_bulk`` is the same Poisson process
    ``schedule_background`` builds packet by packet (counts within a few
    standard deviations, times inside the window).
    """
    from repro.network.fabric import Fabric

    topology = Torus((8, 8))
    exact = Fabric(topology, MinimalAdaptiveRouter(), marking=DdpmScheme())
    packets = schedule_background(exact, UniformRandomPattern(), rate=25.0,
                                  duration=2.0,
                                  rng=np.random.default_rng(7))
    batched = BatchedFabric(topology, MinimalAdaptiveRouter(),
                            marking=DdpmScheme())
    ids = schedule_background_bulk(batched, UniformRandomPattern(),
                                   rate=25.0, duration=2.0,
                                   rng=np.random.default_rng(7))
    expected = 25.0 * 2.0 * topology.num_nodes
    sigma = expected ** 0.5
    assert abs(len(packets) - expected) < 6 * sigma
    assert abs(len(ids) - expected) < 6 * sigma
    columns = batched.log.columns()
    assert columns["times"].size == len(ids)
    assert float(columns["times"].min()) >= 0.0
    assert float(columns["times"].max()) < 2.0
    report("Engineering - bulk background generator law check",
           f"scalar {len(packets)} packets vs bulk {len(ids)} packets "
           f"(expected {expected:.0f} +/- {sigma:.0f})")
