"""Victim-side decode throughput: per-packet ``observe`` vs columnar batches.

Not a paper artifact — the regression guard for the columnar mark-stream
layer. For each marking scheme a seeded fabric run captures a realistic
delivered-mark stream at the victim (real paths, real mark mixes), the
stream is tiled to ~200k marks, and the same victim analysis consumes it
twice: once through the per-packet ``observe`` loop, once through
``observe_batch`` over ring-sized columnar batches. The batches are built
outside the timed region: in the live pipeline the delivery ring fills its
preallocated columns incrementally at delivery time (that cost is charged
to the fabric-throughput benchmark), so what the victim pays per flush is
exactly one ``observe_batch`` call. Both paths must land on identical
suspect sets — the benchmark asserts that before it trusts either timing.

Writes ``benchmarks/results/BENCH_victim.json``; ``benchmarks/
check_victim.py`` compares it against the committed baseline
``benchmarks/BENCH_victim.json`` and enforces the batched-speedup floor.
"""

import json
import math
import time
from pathlib import Path

import numpy as np

from repro.defense.metrics import feed_packets_batched
from repro.network import Fabric
from repro.network.markstream import MarkBatch
from repro.registry import MARKING
from repro.routing import MinimalAdaptiveRouter, RandomPolicy
from repro.topology import Mesh

RESULTS_JSON = Path(__file__).parent / "results" / "BENCH_victim.json"

#: the paper's three scheme families (DDPM / PPM / DPM decode pipelines)
SCHEMES = ("ddpm", "ppm-full", "dpm")
TARGET_MARKS = 200_000
CHUNK_SIZE = 4096  # matches the delivery-ring default flush granularity
VICTIM = 0
REPEATS = 5


def _captured_stream(name, seed=0):
    """Real delivered packets at the victim of a seeded all-to-one run."""
    topology = Mesh((8, 8))
    rng = np.random.default_rng(seed)
    scheme = MARKING.create(name, rng, topology, 0.6)
    fabric = Fabric(topology, MinimalAdaptiveRouter(), marking=scheme)
    fabric.selection = RandomPolicy(np.random.default_rng(seed + 1))
    captured = []
    fabric.attach_delivery_sink(VICTIM,
                                lambda batch: captured.extend(batch.packets))
    sources = [n for n in topology.nodes() if n != VICTIM]
    for i in range(4000):
        fabric.inject(fabric.make_packet(sources[i % len(sources)], VICTIM),
                      delay=i * 0.01)
    fabric.run()
    assert captured, f"{name}: capture run delivered nothing"
    reps = -(-TARGET_MARKS // len(captured))
    return scheme, (captured * reps)[:TARGET_MARKS]


def _best_seconds(fn, loops=1):
    """Best-of-REPEATS seconds per call; ``loops`` calls per sample.

    The batched path finishes 200k marks in single-digit milliseconds, so
    each sample runs it several times back to back — timing a few-ms region
    once is scheduler-noise territory and flapped the CI gate.
    """
    best = math.inf
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(loops):
            fn()
        best = min(best, (time.perf_counter() - t0) / loops)
    return best


def test_victim_analysis_decode_throughput(report):
    results = {}
    lines = []
    for name in SCHEMES:
        scheme, stream = _captured_stream(name)
        n_marks = len(stream)
        batches = [MarkBatch.from_packets(VICTIM, stream[i:i + CHUNK_SIZE])
                   for i in range(0, n_marks, CHUNK_SIZE)]

        def per_packet():
            analysis = scheme.new_victim_analysis(VICTIM)
            observe = analysis.observe
            for packet in stream:
                observe(packet)
            return analysis

        def batched():
            analysis = scheme.new_victim_analysis(VICTIM)
            observe_batch = analysis.observe_batch
            for batch in batches:
                observe_batch(batch)
            return analysis

        # Equivalence before speed: both paths must agree on everything the
        # defense reports, otherwise the timing comparison is meaningless —
        # and the from_packets replay front-end must agree with both.
        ref, fast = per_packet(), batched()
        replayed = scheme.new_victim_analysis(VICTIM)
        feed_packets_batched(replayed, stream, chunk_size=CHUNK_SIZE)
        assert fast.suspects() == ref.suspects() == replayed.suspects()
        assert fast.packets_observed == ref.packets_observed == n_marks
        assert replayed.packets_observed == n_marks
        assert fast.corrupted_packets == ref.corrupted_packets

        s_pp = _best_seconds(per_packet)
        s_b = _best_seconds(batched, loops=20)
        per_packet_rate = n_marks / s_pp
        batched_rate = n_marks / s_b
        results[name] = {
            "marks": n_marks,
            "per_packet_marks_per_sec": per_packet_rate,
            "batched_marks_per_sec": batched_rate,
            "speedup": batched_rate / per_packet_rate,
        }
        lines.append(f"{name:>10}: per-packet {per_packet_rate:>12,.0f} "
                     f"marks/s, batched {batched_rate:>12,.0f} marks/s "
                     f"({batched_rate / per_packet_rate:.1f}x)")
        assert batched_rate > 0 and per_packet_rate > 0

    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(results, indent=2) + "\n")
    report("Engineering - victim analysis decode throughput "
           "(columnar observe_batch vs per-packet observe, 200k-mark streams)",
           "\n".join(lines))
