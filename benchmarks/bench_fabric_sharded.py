"""Simulator-engineering benchmark: sharded multi-process engine throughput.

Companion to ``bench_fabric_batched.py``: runs the *same* 64x64-torus DDoS
flood once under ``engine='batched'`` and once under ``engine='sharded'``
(4 shards, fork workers), and writes
``benchmarks/results/BENCH_throughput_sharded.json`` for
``check_throughput.py``. Each entry records the same-run batched reference
and the measuring host's core count, because the sharded mode's
reason-to-exist floor — >= 2x the batched packets/s at 4 shards — is only
meaningful on hardware with at least 4 cores; ``check_throughput.py``
enforces it core-count-aware (loud skip otherwise), so the committed
baseline stays machine-independent.

Both runs share one workload builder, so the delivered counts must agree
exactly — the benchmark doubles as a scale-level identity check.
"""

import json
import os
from pathlib import Path

import numpy as np

from repro.attack.traffic import UniformRandomPattern, schedule_background_bulk
from repro.core.cluster import Cluster
from repro.engine.watchdog import Watchdog
from repro.marking import DdpmScheme
from repro.routing import MinimalAdaptiveRouter
from repro.topology import Torus

RESULTS_JSON = (Path(__file__).parent / "results"
                / "BENCH_throughput_sharded.json")

#: the floor's shard count (check_throughput.py enforces 2x over batched
#: only when the measuring host has at least this many cores)
SHARDS = 4


def _merge_results(key, entry):
    """Read-modify-write one section of the shared results artifact."""
    RESULTS_JSON.parent.mkdir(exist_ok=True)
    data = (json.loads(RESULTS_JSON.read_text())
            if RESULTS_JSON.exists() else {})
    data[key] = entry
    RESULTS_JSON.write_text(json.dumps(data, indent=2) + "\n")


def _run_flood(engine, shards=None):
    """The batched benchmark's torus64 flood, on the requested engine."""
    watchdog = Watchdog(wall_clock_limit=300.0)
    cluster = Cluster(Torus((64, 64)), MinimalAdaptiveRouter(),
                      marking=DdpmScheme(), seed=0, engine=engine,
                      shards=shards, watchdog=watchdog)
    victim = cluster.default_victim()
    cluster.launch_ddos(victim=victim, num_attackers=16,
                        attack_rate_per_node=100.0, duration=2.0)
    schedule_background_bulk(cluster.fabric, UniformRandomPattern(),
                             rate=2.0, duration=2.0,
                             rng=np.random.default_rng(1))
    cluster.run()
    fabric = cluster.fabric
    return (fabric.counters["delivered"], fabric.counters["dropped"],
            fabric.sim.events_executed)


def test_sharded_fabric_torus64_flood(benchmark, report):
    """64x64 torus flood at 4 shards, with a same-run batched reference."""
    from time import perf_counter

    # Same-machine, same-workload batched reference for the speedup floor.
    start = perf_counter()
    batched = _run_flood("batched")
    batched_seconds = perf_counter() - start

    def run():
        return _run_flood("sharded", shards=SHARDS)

    delivered, dropped, windows = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)
    mean_s = benchmark.stats.stats.mean
    # Scale-level identity check: same workload, same results.
    assert (delivered, dropped) == (batched[0], batched[1]), \
        "sharded results diverged from batched on the identical workload"
    cores = os.cpu_count() or 1
    batched_pps = batched[0] / batched_seconds
    sharded_pps = delivered / mean_s
    report("Engineering - sharded engine at scale (4096-node torus flood, "
           f"{SHARDS} shards, adaptive routing, DDPM marking)",
           f"{delivered} delivered / {dropped} dropped across {windows} "
           f"sync windows in {mean_s:.2f}s; {sharded_pps:,.0f} packets/s "
           f"vs batched {batched_pps:,.0f} packets/s same-run "
           f"({cores} host core(s))")
    _merge_results("torus64_flood", {
        "delivered": int(delivered),
        "dropped": int(dropped),
        "windows": int(windows),
        "mean_seconds": mean_s,
        "packets_per_sec": sharded_pps,
        "batched_packets_per_sec": batched_pps,
        "batched_mean_seconds": batched_seconds,
        "shards": SHARDS,
        "cpu_count": cores,
    })
    assert delivered > 0
