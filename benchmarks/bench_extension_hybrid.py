"""E3 (paper §6.3) — hybrid networks and hierarchical DDPM.

The paper leaves hybrid (cluster-based) networks as future work. This
benchmark shows the natural extension working: on a ClusterMesh (regular
backbone, several hosts per switch), plain DDPM refuses at attach, while
H-DDPM — port slot + backbone distance vector — identifies the exact
attacking *host* from one packet, scaling to 16384 hosts in the same
16-bit field.
"""

import numpy as np

from repro.errors import MarkingError
from repro.marking import HierarchicalDdpmScheme
from repro.marking.ddpm_layout import DdpmLayout
from repro.network import Fabric
from repro.routing import TableRouter
from repro.routing.selection import RandomPolicy
from repro.topology import ClusterMesh
from repro.util.tables import TextTable


def test_extension_hddpm_capacity(benchmark, report):
    """MF budget for hybrid layouts: port bits + backbone vector bits."""

    def measure():
        rows = []
        for dims, hosts, wrap in (((4, 4), 4, False), ((8, 8), 8, False),
                                  ((16, 16), 16, True), ((32, 32), 16, True)):
            cm = ClusterMesh(dims, hosts_per_switch=hosts, wraparound=wrap)
            try:
                scheme = HierarchicalDdpmScheme()
                scheme.attach(cm)
                rows.append(("x".join(map(str, dims)), hosts, cm.num_hosts,
                             scheme.layout.used_bits, "fits"))
            except Exception:
                rows.append(("x".join(map(str, dims)), hosts, cm.num_hosts,
                             "-", "REJECTED"))
        return rows

    rows = benchmark(measure)
    table = TextTable(["backbone", "hosts/switch", "total hosts",
                       "bits used", "outcome"])
    for row in rows:
        table.add_row(row)
    report("Extension (section 6.3) - hierarchical DDPM capacity on hybrids",
           table.render())
    by_backbone = {row[0]: row[4] for row in rows}
    assert by_backbone["32x32"] == "fits"   # 16384 hosts in 16 bits
    lookup = {row[0]: row[2] for row in rows}
    assert lookup["32x32"] == 16384


def test_extension_hddpm_end_to_end(benchmark, report):
    def run():
        cm = ClusterMesh((8, 8), hosts_per_switch=4)
        plain_refuses = False
        try:
            DdpmLayout.for_topology(cm)
        except MarkingError:
            plain_refuses = True

        scheme = HierarchicalDdpmScheme()
        fab = Fabric(cm, TableRouter(cm), marking=scheme,
                     selection=RandomPolicy(np.random.default_rng(0)))
        victim = 255  # last host
        analysis = scheme.new_victim_analysis(victim)
        fab.add_delivery_handler(victim, lambda ev: analysis.observe(ev.packet))
        rng = np.random.default_rng(1)
        attackers = sorted(int(a) for a in rng.choice(255, size=5, replace=False))
        for i, attacker in enumerate(attackers * 8):
            fab.inject(fab.make_packet(attacker, victim,
                                       spoofed_src_ip=int(rng.integers(2**32))),
                       delay=i * 0.03)
        fab.run()
        return plain_refuses, analysis.suspects(), frozenset(attackers)

    plain_refuses, suspects, attackers = benchmark.pedantic(run, rounds=1,
                                                            iterations=1)
    report("Extension (section 6.3) - H-DDPM on a 256-host hybrid",
           f"plain DDPM refuses the hybrid topology: {plain_refuses}\n"
           f"H-DDPM suspects == attackers: {suspects == attackers} "
           f"({len(attackers)} spoofing hosts identified exactly)")
    assert plain_refuses
    assert suspects == attackers
