"""Victim-decode regression gate for CI.

Compares a freshly measured ``benchmarks/results/BENCH_victim.json``
(written by ``bench_victim_analysis.py``) against the committed baseline
``benchmarks/BENCH_victim.json`` and exits non-zero when, for any scheme:

* batched decode throughput falls below ``tolerance x baseline`` (the
  ratio defaults to 0.7, overridable via ``REPRO_BENCH_TOLERANCE`` — same
  knob as the fabric-throughput gate but looser by default: a 200k-mark
  batched pass finishes in single-digit milliseconds, where run-to-run
  variance of +-25% is routine, so this arm only catches structural
  regressions), or
* the batched/per-packet speedup drops below the floor (default 2.0,
  overridable via ``REPRO_BENCH_SPEEDUP_FLOOR``) — the columnar layer's
  reason to exist; losing it means a change quietly degraded
  ``observe_batch`` back to per-row work.

Being *faster* than the baseline never fails; refresh the baseline by
copying the fresh results file over it when a change legitimately shifts
throughput.

Usage: ``python benchmarks/check_victim.py`` (after running the
benchmark), or ``make bench-victim`` for the full sequence.
"""

import json
import os
import sys
from pathlib import Path

HERE = Path(__file__).parent
BASELINE = HERE / "BENCH_victim.json"
FRESH = HERE / "results" / "BENCH_victim.json"


def main() -> int:
    """Compare fresh benchmark output against the committed baseline."""
    tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.7"))
    speedup_floor = float(os.environ.get("REPRO_BENCH_SPEEDUP_FLOOR", "2.0"))
    if not BASELINE.exists():
        print(f"no committed baseline at {BASELINE}; nothing to compare")
        return 1
    if not FRESH.exists():
        print(f"no fresh results at {FRESH}; run "
              "`pytest benchmarks/bench_victim_analysis.py` first")
        return 1
    baseline = json.loads(BASELINE.read_text())
    fresh = json.loads(FRESH.read_text())

    failed = False
    for scheme in baseline:
        if scheme not in fresh:
            print(f"{scheme:>10}: missing from fresh results  REGRESSION")
            failed = True
            continue
        base = float(baseline[scheme]["batched_marks_per_sec"])
        new = float(fresh[scheme]["batched_marks_per_sec"])
        speedup = float(fresh[scheme]["speedup"])
        ratio = new / base if base else float("inf")
        status = "ok"
        if new < base * tolerance:
            status = f"REGRESSION (below {tolerance:.0%} of baseline)"
            failed = True
        if speedup < speedup_floor:
            status = (f"REGRESSION (batched speedup {speedup:.1f}x below "
                      f"{speedup_floor:.1f}x floor)")
            failed = True
        print(f"{scheme:>10}: baseline {base:>13,.0f} marks/s  fresh "
              f"{new:>13,.0f} marks/s  ({ratio:6.2f}x baseline, "
              f"{speedup:6.1f}x per-packet)  {status}")
    if failed:
        print("victim decode regression gate FAILED")
        return 1
    print("victim decode regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
