"""AB3 — detector ablation: rate vs entropy vs CUSUM on the same SYN flood.

The paper assumes detection exists (§6.1); this ablation shows how much the
detector choice matters downstream: alarm latency gates identification and
quarantine, and an oblivious detector leaves the flood unchecked.
"""

import numpy as np

from repro.attack.botnet import Botnet
from repro.attack.flows import FlowSpec, schedule_flow
from repro.defense.detection import CusumDetector, EntropyDetector, RateThresholdDetector
from repro.defense.identification import IdentificationPipeline
from repro.defense.response import QuarantineController
from repro.marking import DdpmScheme
from repro.network import Fabric
from repro.network.packet import PacketKind
from repro.routing import MinimalAdaptiveRouter, RandomPolicy
from repro.topology import Mesh
from repro.util.tables import TextTable

ATTACK_START = 5.0


def _run_with(detector_factory, seed=3):
    rng = np.random.default_rng(seed)
    topology = Mesh((6, 6))
    scheme = DdpmScheme()
    fabric = Fabric(topology, MinimalAdaptiveRouter(), marking=scheme)
    fabric.selection = RandomPolicy(np.random.default_rng(seed + 1))
    victim = topology.index((3, 3))

    detector = detector_factory()
    pipeline = IdentificationPipeline(
        fabric, victim, scheme.new_victim_analysis(victim, min_share=0.05),
        detector)
    controller = QuarantineController(fabric, pipeline, confirmation_packets=25)

    # Calm background to the victim: 4 nodes at 3 pkt/s each.
    legit = [topology.index(c) for c in [(0, 0), (0, 5), (5, 0), (5, 5)]]
    for src in legit:
        schedule_flow(fabric, FlowSpec(src, victim, rate=3.0, duration=20.0), rng)

    botnet = Botnet([topology.index((1, 1)), topology.index((4, 2)),
                     topology.index((2, 4))])
    truth = botnet.launch(fabric, victim, rate_per_slave=50.0, duration=12.0,
                          rng=rng, start=ATTACK_START)

    # Entropy detectors need a clean baseline.
    if isinstance(detector, EntropyDetector):
        fabric.run_until(ATTACK_START - 0.5)
        if detector.packets_seen >= 8:
            detector.baseline_entropy = detector.current_entropy()
    fabric.run()

    alarm = detector.alarm_time
    reaction = controller.reaction_latency(ATTACK_START)
    contained = set(botnet.slaves) <= controller.quarantined
    innocents_blocked = len(controller.quarantined - set(botnet.slaves))
    return {
        "alarm_latency": (alarm - ATTACK_START) if alarm is not None else None,
        "reaction": reaction,
        "contained": contained,
        "innocents_blocked": innocents_blocked,
    }


def test_ablation_detector_choice(benchmark, report):
    factories = [
        ("rate-threshold", lambda: RateThresholdDetector(window=0.5,
                                                         threshold_rate=40.0)),
        ("entropy", lambda: EntropyDetector(window_packets=32, tolerance=1.0)),
        ("cusum", lambda: CusumDetector(window=0.5, drift=10.0, threshold=30.0)),
    ]

    def measure():
        return [(name, _run_with(factory)) for name, factory in factories]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["detector", "alarm latency", "quarantine latency",
                       "all attackers contained", "innocents blocked"])
    for name, out in rows:
        table.add_row([
            name,
            f"{out['alarm_latency']:.2f}" if out["alarm_latency"] is not None else "never",
            f"{out['reaction']:.2f}" if out["reaction"] is not None else "never",
            "yes" if out["contained"] else "no",
            out["innocents_blocked"],
        ])
    report("Ablation AB3 - detector choice vs end-to-end containment",
           table.render())

    results = dict(rows)
    # Every detector eventually alarms on a 150 pkt/s flood...
    for name, out in rows:
        assert out["alarm_latency"] is not None, name
    # ...and rate-threshold + cusum lead to full containment.
    assert results["rate-threshold"]["contained"]
    assert results["cusum"]["contained"]
    # The rate detector is the fastest of the three on a blunt flood.
    latencies = {name: out["alarm_latency"] for name, out in rows}
    assert latencies["rate-threshold"] <= latencies["cusum"]
