"""Shared benchmark-harness fixtures.

Every benchmark regenerates one of the paper's tables/figures/claims and
reports it two ways: printed to the terminal (so ``pytest benchmarks/
--benchmark-only`` output doubles as the reproduction log) and written to
``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.
"""

import re
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report():
    """report(title, text): print and persist one reproduction artifact."""

    def _report(title: str, text: str) -> Path:
        banner = f"\n===== {title} =====\n{text}\n"
        print(banner)
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:80]
        path = RESULTS_DIR / f"{slug}.txt"
        path.write_text(f"{title}\n\n{text}\n")
        return path

    return _report
