"""Shared benchmark-harness fixtures.

Every benchmark regenerates one of the paper's tables/figures/claims and
reports it two ways: printed to the terminal (so ``pytest benchmarks/
--benchmark-only`` output doubles as the reproduction log) and written to
``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.

Config-driven benchmarks go through the session ``runner`` fixture — a
:class:`repro.runner.ParallelRunner` configured by environment:

``REPRO_BENCH_JOBS``
    Worker processes (default 1; any value produces identical results —
    the runner's determinism contract).
``REPRO_BENCH_CACHE``
    Result-cache directory. Unset/empty/"off" disables caching (the
    default, so recorded results always reflect the current code); when
    set, a repeated benchmark run simulates nothing — its report shows
    ``simulated 0``.
"""

import os
import re
from pathlib import Path

import pytest

from repro.runner import ParallelRunner, ResultCache

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report():
    """report(title, text): print and persist one reproduction artifact."""

    def _report(title: str, text: str) -> Path:
        banner = f"\n===== {title} =====\n{text}\n"
        print(banner)
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:80]
        path = RESULTS_DIR / f"{slug}.txt"
        path.write_text(f"{title}\n\n{text}\n")
        return path

    return _report


@pytest.fixture(scope="session")
def runner():
    """Environment-configured experiment runner shared by the session."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")
    cache_dir = os.environ.get("REPRO_BENCH_CACHE", "")
    cache = (ResultCache(cache_dir)
             if cache_dir and cache_dir.lower() not in ("off", "none", "0")
             else None)
    return ParallelRunner(n_jobs=jobs, cache=cache)
