"""E1 (paper §6.3) — indirect networks: where DDPM's regularity assumption ends.

"Our approach is limited to direct networks... hybrid networks and
irregular networks do not have a universal regularity and may need a
completely different approach." Demonstrated, not asserted: on a k=4
fat-tree, DDPM refuses at attach (no coordinate algebra), while label-based
DPM keeps producing signatures under table-driven multipath routing — with
the expected instability, since fat-tree ECMP is adaptive by nature.
"""

import numpy as np
import pytest

from repro.errors import MarkingError
from repro.marking.ddpm_layout import DdpmLayout
from repro.marking.dpm import DpmScheme
from repro.network import Fabric
from repro.routing import TableRouter
from repro.routing.selection import RandomPolicy
from repro.topology import FatTree
from repro.util.tables import TextTable


def test_extension_fattree_scheme_applicability(benchmark, report):
    def measure():
        ft = FatTree(4)
        rows = []
        try:
            DdpmLayout.for_topology(ft)
            rows.append(("ddpm", "attaches"))
        except MarkingError as exc:
            rows.append(("ddpm", f"REFUSES: {str(exc)[:60]}..."))
        scheme = DpmScheme()
        scheme.attach(ft)
        rows.append(("dpm", "attaches (labels only)"))
        return ft, rows

    ft, rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["scheme", "on a k=4 fat-tree"])
    for row in rows:
        table.add_row(row)
    report("Extension (section 6.3) - marking schemes on an indirect network",
           table.render())
    outcome = dict(rows)
    assert outcome["ddpm"].startswith("REFUSES")
    assert outcome["dpm"].startswith("attaches")


def test_extension_fattree_dpm_signature_instability(benchmark, report):
    """ECMP multipath gives one source many DPM signatures — the same
    §4.3 failure, inherent to the topology rather than a routing option."""

    def measure():
        ft = FatTree(4)
        scheme = DpmScheme()
        fab = Fabric(ft, TableRouter(ft), marking=scheme,
                     selection=RandomPolicy(np.random.default_rng(0)))
        victim = 15  # a host in the last pod
        analysis = scheme.new_victim_analysis(victim)
        fab.add_delivery_handler(victim, lambda ev: analysis.observe(ev.packet))
        source = 0  # a host in pod 0: cross-pod, must cross the core
        for i in range(120):
            fab.inject(fab.make_packet(source, victim), delay=i * 0.05)
        fab.run()
        return len(analysis.observed_signatures()), fab.counters["delivered"]

    signatures, delivered = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("Extension (section 6.3) - DPM signatures for ONE source over "
           "fat-tree ECMP",
           f"{delivered} packets from one host produced {signatures} distinct "
           "signatures — signature filtering cannot pin a source here")
    assert delivered == 120
    assert signatures > 2
