"""T3 — regenerate Table 3: scalability of DDPM.

Paper values: 2-D mesh/torus to 128 x 128 (16384 nodes, 2 log n = 16 bits);
3-D to 16 x 16 x 32 (8192 nodes, 5+5+6 bits); 16-cube hypercube (65536).
"""

from repro.analysis.scalability import render_table, table3
from repro.marking.ddpm import DdpmScheme
from repro.marking.ddpm_layout import DdpmLayout
from repro.topology import Mesh
from repro.util.tables import TextTable


def test_table3_scalability(benchmark, report):
    rows = benchmark(table3)
    report("Table 3 - Scalability of DDPM",
           render_table(rows, "Paper: 128x128 (16384); 16x16x32 (8192); 2^16"))
    assert rows[0]["max_nodes"] == 16384
    assert rows[1]["max_nodes"] == 8192
    assert rows[2]["max_nodes"] == 65536


def test_table3_capacity_rule(benchmark, report):
    """Per-dimension capacities for every way of splitting the 16-bit MF."""

    def sweep():
        out = []
        for n_dims in (1, 2, 3, 4, 5):
            caps = DdpmLayout.capacities(n_dims)
            out.append((n_dims, caps, DdpmLayout.max_nodes(n_dims)))
        out.append(("hypercube", (2,) * 16, DdpmLayout.max_nodes(16, hypercube=True)))
        return out

    values = benchmark(sweep)
    table = TextTable(["dimensions", "per-dim capacity", "max nodes"])
    for n_dims, caps, nodes in values:
        table.add_row([n_dims, "x".join(map(str, caps)), nodes])
    report("Table 3 rule - MF split vs cluster capacity", table.render())
    by_dims = {row[0]: row[2] for row in values}
    assert by_dims[2] == 16384 and by_dims[3] == 8192


def test_table3_max_network_actually_marks(benchmark, report):
    """The 128x128 boundary case is not just arithmetic: the real scheme
    attaches and identifies on the maximal mesh."""
    mesh = Mesh((128, 128))
    scheme = DdpmScheme()
    scheme.attach(mesh)
    src = mesh.index((0, 0))
    dst = mesh.index((127, 127))

    def corner_to_corner_identify():
        from repro.network.ip import IPHeader
        from repro.network.packet import Packet
        from repro.routing import DimensionOrderRouter, walk_route

        path = walk_route(mesh, DimensionOrderRouter(), src, dst,
                          lambda c, cur: c[0])
        packet = Packet(IPHeader(1, 2), src, dst)
        scheme.on_inject(packet, src)
        for u, v in zip(path[:-1], path[1:]):
            scheme.on_hop(packet, u, v)
        return scheme.identify(packet, dst)

    identified = benchmark(corner_to_corner_identify)
    report("Table 3 boundary - 128x128 mesh end-to-end",
           f"corner-to-corner path of {mesh.diameter()} hops; "
           f"identified source {identified} (true {src})")
    assert identified == src
