"""E2 (paper §6.1) — minimal trusted monitor switches.

"One can consider to find a minimal set of trusted switches for detection
and identification." Measured here: the monitor cut around a victim
observes 100% of its inbound traffic under adaptive routing, alarms on a
flood without any victim participation, and — because monitors see DDPM's
accumulated vector mid-flight — identifies the attacker before the victim
could.
"""

import numpy as np

from repro.defense.monitors import (
    DistributedRateDetector,
    is_monitor_cut,
    monitor_cut_for_victim,
)
from repro.marking import DdpmScheme
from repro.network import Fabric
from repro.routing import MinimalAdaptiveRouter, RandomPolicy
from repro.topology import FatTree, Hypercube, Mesh, Torus
from repro.util.tables import TextTable


def test_extension_monitor_cut_sizes(benchmark, report):
    def measure():
        rows = []
        cases = [
            ("mesh 8x8, interior victim", Mesh((8, 8)), 27),
            ("mesh 8x8, corner victim", Mesh((8, 8)), 0),
            ("torus 8x8", Torus((8, 8)), 0),
            ("hypercube 2^6", Hypercube(6), 0),
            ("fat-tree k=4, host victim", FatTree(4), 0),
        ]
        for name, topo, victim in cases:
            monitors = monitor_cut_for_victim(topo, victim)
            rows.append((name, topo.num_nodes, len(monitors),
                         is_monitor_cut(topo, monitors, victim)))
        return rows

    rows = benchmark(measure)
    table = TextTable(["victim placement", "nodes", "monitor switches",
                       "verified cut"])
    for row in rows:
        table.add_row(row)
    report("Extension (section 6.1) - minimal trusted monitor sets",
           table.render())
    sizes = {name: size for name, _, size, _ in rows}
    assert sizes["mesh 8x8, interior victim"] == 4
    assert sizes["mesh 8x8, corner victim"] == 2
    assert sizes["fat-tree k=4, host victim"] == 1
    assert all(verified for _, _, _, verified in rows)


def test_extension_monitors_detect_and_identify_in_flight(benchmark, report):
    def measure():
        topology = Mesh((8, 8))
        scheme = DdpmScheme()
        fab = Fabric(topology, MinimalAdaptiveRouter(), marking=scheme,
                     selection=RandomPolicy(np.random.default_rng(0)))
        victim = topology.index((4, 4))
        monitors = monitor_cut_for_victim(topology, victim)
        detector = DistributedRateDetector(fab, victim, monitors,
                                           window=0.5, threshold_rate=30.0)
        monitor_identified = {}

        def observe(packet, node, time):
            if packet.destination_node == victim and detector.under_attack:
                src = scheme.identify(packet, node)
                monitor_identified.setdefault(src, time)

        for monitor in monitors:
            fab.add_transit_observer(monitor, observe)

        victim_first_delivery = {}
        fab.add_delivery_handler(
            victim,
            lambda ev: victim_first_delivery.setdefault(
                scheme.identify(ev.packet, victim), ev.time))

        attacker = topology.index((0, 7))
        for i in range(300):
            fab.inject(fab.make_packet(attacker, victim,
                                       spoofed_src_ip=0x01010101),
                       delay=i * 0.01)
        fab.run()
        return (detector.alarm_time, monitor_identified.get(attacker),
                victim_first_delivery, attacker, detector.transits_seen)

    alarm, monitor_time, victim_times, attacker, transits = \
        benchmark.pedantic(measure, rounds=1, iterations=1)
    report("Extension (section 6.1) - in-flight detection + identification",
           f"alarm at t={alarm:.2f}; monitor identified attacker {attacker} "
           f"at t={monitor_time:.2f}; transits observed: {transits}\n"
           "monitors identify from the accumulated vector mid-route, "
           "before delivery")
    assert alarm is not None
    assert monitor_time is not None
    # The monitor's identification of a given packet precedes its delivery.
    assert attacker in victim_times
