"""F2 — regenerate Figure 2: routing algorithms under link failures.

(a) fault-free 4x4 mesh: XY routes S1 (2,0) and S2 (0,0) to D (1,2);
(b) east links of S1/S2 failed: XY blocks, west-first routes around;
(c) D isolated except via its east neighbor (a forced final west turn):
    west-first blocks, fully adaptive delivers.
"""

import numpy as np
import pytest

from repro.errors import UnroutablePacketError
from repro.routing import (
    DimensionOrderRouter,
    FullyAdaptiveRouter,
    RandomPolicy,
    WestFirstRouter,
    walk_route,
)
from repro.topology import Mesh
from repro.util.tables import TextTable


def _outcome(topology, router, src, dst, select, budget=0):
    try:
        path = walk_route(topology, router, src, dst, select,
                          misroute_budget=budget)
        return f"delivered in {len(path) - 1} hops"
    except Exception as exc:
        return f"BLOCKED ({type(exc).__name__})"


def _scenario_table():
    rng = np.random.default_rng(0)
    random_select = RandomPolicy(rng).binder()
    first = lambda c, cur: c[0]

    rows = []

    def run_case(label, faults, budget=0):
        mesh = Mesh((4, 4))
        s1, s2, d = mesh.index((2, 0)), mesh.index((0, 0)), mesh.index((1, 2))
        for a, b in faults(mesh, s1, s2, d):
            mesh.fail_link(a, b)
        for name, router, select in (
            ("XY", DimensionOrderRouter(axis_order=(1, 0)), first),
            ("west-first", WestFirstRouter(), random_select),
            ("fully-adaptive", FullyAdaptiveRouter(), random_select),
        ):
            for src_name, src in (("S1", s1), ("S2", s2)):
                rows.append((label, name, src_name,
                             _outcome(mesh, router, src, d, select, budget)))

    run_case("(a) fault-free", lambda m, s1, s2, d: [])
    run_case("(b) east faults", lambda m, s1, s2, d: [
        (s1, m.index((2, 1))), (s2, m.index((0, 1)))])
    run_case("(c) D isolated but east", lambda m, s1, s2, d: [
        (d, m.index((0, 2))), (d, m.index((2, 2))), (d, m.index((1, 1)))],
        budget=10)
    return rows


def test_figure2_routing_outcomes(benchmark, report):
    rows = benchmark(_scenario_table)
    table = TextTable(["scenario", "routing", "source", "outcome"])
    for row in rows:
        table.add_row(row)
    report("Figure 2 - Routing under link failures", table.render())

    outcome = {(sc, r, s): o for sc, r, s, o in rows}
    # (a): everyone delivers.
    for r in ("XY", "west-first", "fully-adaptive"):
        assert "delivered" in outcome[("(a) fault-free", r, "S1")]
    # (b): XY blocked, the adaptive pair deliver.
    assert "BLOCKED" in outcome[("(b) east faults", "XY", "S1")]
    assert "BLOCKED" in outcome[("(b) east faults", "XY", "S2")]
    assert "delivered" in outcome[("(b) east faults", "west-first", "S1")]
    assert "delivered" in outcome[("(b) east faults", "fully-adaptive", "S1")]
    # (c): only fully adaptive delivers (the final turn is west).
    assert "BLOCKED" in outcome[("(c) D isolated but east", "XY", "S1")]
    assert "BLOCKED" in outcome[("(c) D isolated but east", "west-first", "S1")]
    assert "delivered" in outcome[("(c) D isolated but east", "fully-adaptive", "S1")]


def test_figure2a_exact_paths(benchmark, report):
    """The paper's prose paths for scenario (a), node by node."""

    def paths():
        mesh = Mesh((4, 4))
        xy = DimensionOrderRouter(axis_order=(1, 0))
        p1 = walk_route(mesh, xy, mesh.index((2, 0)), mesh.index((1, 2)),
                        lambda c, cur: c[0])
        p2 = walk_route(mesh, xy, mesh.index((0, 0)), mesh.index((1, 2)),
                        lambda c, cur: c[0])
        return ([mesh.coord(n) for n in p1], [mesh.coord(n) for n in p2])

    p1, p2 = benchmark(paths)
    report("Figure 2(a) - XY paths",
           f"S1: {' -> '.join(map(str, p1))}\nS2: {' -> '.join(map(str, p2))}")
    # "moving along the third row and then moving up along the third column"
    assert p1 == [(2, 0), (2, 1), (2, 2), (1, 2)]
    # "move along the first row and then move down along the third column"
    assert p2 == [(0, 0), (0, 1), (0, 2), (1, 2)]
