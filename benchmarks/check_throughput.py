"""Throughput-regression gate for CI, covering both fabric engines.

Compares freshly measured results against the committed baselines and exits
non-zero on a large regression:

* ``results/BENCH_throughput.json`` (exact per-packet engine, written by
  ``bench_fabric_throughput.py``) against ``BENCH_throughput.json``.
* ``results/BENCH_throughput_batched.json`` (batched cohort engine, written
  by ``bench_fabric_batched.py``) against ``BENCH_throughput_batched.json``
  — plus the batched mode's existence check: on the *matched* workload (the
  same 8x8-torus background the exact benchmark times) the cohort engine
  must clear ``10x`` the exact engine's packets/s. The exact reference is
  the fresh exact measurement when one exists (same machine, fair ratio),
  else the committed exact baseline.

Tolerances are *ratios* (default 0.9, overridable via
``REPRO_BENCH_TOLERANCE``); CI machines are noisy, so the gates catch
structural regressions — a complexity bug, not a few percent of jitter. The
10x floor is scaled by the same tolerance. Each gate only runs when its
fresh results file exists, so ``make bench-throughput`` (exact only) and
``make bench-batched`` (both engines) share this script.

Being *faster* than a baseline never fails; refresh a baseline by copying
the fresh results file over it when a change legitimately shifts throughput.
"""

import json
import os
import sys
from pathlib import Path

HERE = Path(__file__).parent
BASELINE = HERE / "BENCH_throughput.json"
FRESH = HERE / "results" / "BENCH_throughput.json"
BASELINE_BATCHED = HERE / "BENCH_throughput_batched.json"
FRESH_BATCHED = HERE / "results" / "BENCH_throughput_batched.json"
METRICS = ("events_per_sec", "packets_per_sec")
#: the batched engine's reason to exist (ISSUE: >= 10x exact packets/s)
SPEEDUP_FLOOR = 10.0


def _check(label, base, new, tolerance):
    """Print one comparison line; True when ``new`` regressed past tolerance."""
    ratio = new / base if base else float("inf")
    status = "ok"
    failed = new < base * tolerance
    if failed:
        status = f"REGRESSION (below {tolerance:.0%} of baseline)"
    print(f"{label:>34}: baseline {base:>12,.0f}  fresh {new:>12,.0f}  "
          f"({ratio:6.2f}x)  {status}")
    return failed


def _check_exact(tolerance):
    """Exact-engine gate: fresh metrics vs the committed baseline."""
    baseline = json.loads(BASELINE.read_text())
    fresh = json.loads(FRESH.read_text())
    return any([_check(metric, float(baseline[metric]),
                       float(fresh[metric]), tolerance)
                for metric in METRICS])


def _check_batched(tolerance):
    """Batched-engine gate: per-workload regression + the 10x floor."""
    if not BASELINE_BATCHED.exists():
        print(f"no committed batched baseline at {BASELINE_BATCHED}")
        return True
    baseline = json.loads(BASELINE_BATCHED.read_text())
    fresh = json.loads(FRESH_BATCHED.read_text())
    failed = False
    for workload in sorted(baseline):
        if workload not in fresh:
            print(f"fresh batched results lack workload {workload!r}")
            failed = True
            continue
        failed |= _check(f"batched/{workload} packets_per_sec",
                         float(baseline[workload]["packets_per_sec"]),
                         float(fresh[workload]["packets_per_sec"]),
                         tolerance)

    # Speedup floor on the matched workload: prefer the same-machine fresh
    # exact measurement; fall back to the committed exact baseline.
    exact_source = FRESH if FRESH.exists() else BASELINE
    exact = float(json.loads(exact_source.read_text())["packets_per_sec"])
    batched = float(fresh["matched"]["packets_per_sec"])
    floor = SPEEDUP_FLOOR * tolerance
    speedup = batched / exact if exact else float("inf")
    status = "ok"
    if speedup < floor:
        status = f"BELOW FLOOR (requires {floor:.1f}x)"
        failed = True
    print(f"{'batched/matched speedup vs exact':>34}: "
          f"{speedup:6.2f}x (exact ref {exact:,.0f} pkt/s from "
          f"{exact_source.name})  {status}")
    return failed


def main() -> int:
    """Compare fresh benchmark output against the committed baselines."""
    tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.9"))
    if not BASELINE.exists():
        print(f"no committed baseline at {BASELINE}; nothing to compare")
        return 1
    ran = failed = False
    if FRESH.exists():
        ran = True
        failed |= _check_exact(tolerance)
    if FRESH_BATCHED.exists():
        ran = True
        failed |= _check_batched(tolerance)
    if not ran:
        print(f"no fresh results at {FRESH} or {FRESH_BATCHED}; run "
              "`pytest benchmarks/bench_fabric_throughput.py` and/or "
              "`pytest benchmarks/bench_fabric_batched.py` first")
        return 1
    if failed:
        print("throughput regression gate FAILED")
        return 1
    print("throughput regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
