"""Throughput-regression gate for CI, covering all three fabric engines.

Compares freshly measured results against the committed baselines and exits
non-zero on a large regression:

* ``results/BENCH_throughput.json`` (exact per-packet engine, written by
  ``bench_fabric_throughput.py``) against ``BENCH_throughput.json``.
* ``results/BENCH_throughput_batched.json`` (batched cohort engine, written
  by ``bench_fabric_batched.py``) against ``BENCH_throughput_batched.json``
  — plus the batched mode's existence check: on the *matched* workload (the
  same 8x8-torus background the exact benchmark times) the cohort engine
  must clear ``10x`` the exact engine's packets/s. The exact reference is
  the fresh exact measurement when one exists (same machine, fair ratio),
  else the committed exact baseline.
* ``results/BENCH_throughput_sharded.json`` (sharded multi-process engine,
  written by ``bench_fabric_sharded.py``) against
  ``BENCH_throughput_sharded.json`` — plus the sharded mode's existence
  check: ``2x`` the *same-run* batched packets/s on the 64x64-torus flood
  at 4 shards. Parallel speedup needs parallel hardware, so the floor is
  only *enforced* when the measuring host has at least as many cores as
  shards; fewer cores prints a loud skip (the identity tests still hold the
  engine to correctness everywhere).

Every gate prints the measured-vs-required ratio, and every threshold —
baseline comparisons and both floors — is scaled by the same
``REPRO_BENCH_TOLERANCE`` (default 0.9): CI machines are noisy, so the
gates catch structural regressions — a complexity bug, not a few percent
of jitter.

The comparison logic lives in pure functions of (data, tolerance) so the
unit tests in ``tests/test_bench_gate.py`` can drive it without touching
the filesystem; ``main`` only does IO.

Being *faster* than a baseline never fails; refresh a baseline by copying
the fresh results file over it when a change legitimately shifts throughput.
"""

import json
import os
import sys
from pathlib import Path

HERE = Path(__file__).parent
BASELINE = HERE / "BENCH_throughput.json"
FRESH = HERE / "results" / "BENCH_throughput.json"
BASELINE_BATCHED = HERE / "BENCH_throughput_batched.json"
FRESH_BATCHED = HERE / "results" / "BENCH_throughput_batched.json"
BASELINE_SHARDED = HERE / "BENCH_throughput_sharded.json"
FRESH_SHARDED = HERE / "results" / "BENCH_throughput_sharded.json"
METRICS = ("events_per_sec", "packets_per_sec")
#: the batched engine's reason to exist (ISSUE: >= 10x exact packets/s)
SPEEDUP_FLOOR = 10.0
#: the sharded engine's reason to exist (>= 2x batched packets/s at 4 shards)
SHARDED_SPEEDUP_FLOOR = 2.0


def _check(label, base, new, tolerance):
    """Print one comparison line; True when ``new`` regressed past tolerance."""
    ratio = new / base if base else float("inf")
    status = "ok"
    failed = new < base * tolerance
    if failed:
        status = f"REGRESSION (below {tolerance:.0%} of baseline)"
    print(f"{label:>34}: baseline {base:>12,.0f}  fresh {new:>12,.0f}  "
          f"({ratio:6.2f}x)  {status}")
    return failed


def check_floor(label, measured, reference, floor, tolerance):
    """One speedup-floor gate: ``measured/reference`` must clear
    ``floor * tolerance``. Prints the measured-vs-floor ratio; returns True
    on failure (pure in its arguments — unit-tested)."""
    required = floor * tolerance
    speedup = measured / reference if reference else float("inf")
    ratio = speedup / required if required else float("inf")
    status = "ok"
    failed = speedup < required
    if failed:
        status = f"BELOW FLOOR (requires {required:.1f}x)"
    print(f"{label:>34}: {speedup:6.2f}x measured vs {required:.1f}x floor "
          f"({ratio:6.2f}x of floor)  {status}")
    return failed


def check_exact(baseline, fresh, tolerance):
    """Exact-engine gate: fresh metrics vs the committed baseline."""
    return any([_check(metric, float(baseline[metric]),
                       float(fresh[metric]), tolerance)
                for metric in METRICS])


def check_batched(baseline, fresh, exact_pps, exact_source, tolerance):
    """Batched-engine gate: per-workload regression + the 10x floor."""
    failed = False
    for workload in sorted(baseline):
        if workload not in fresh:
            print(f"fresh batched results lack workload {workload!r}")
            failed = True
            continue
        failed |= _check(f"batched/{workload} packets_per_sec",
                         float(baseline[workload]["packets_per_sec"]),
                         float(fresh[workload]["packets_per_sec"]),
                         tolerance)
    batched = float(fresh["matched"]["packets_per_sec"])
    print(f"  (exact ref {exact_pps:,.0f} pkt/s from {exact_source})")
    failed |= check_floor("batched/matched speedup vs exact",
                          batched, exact_pps, SPEEDUP_FLOOR, tolerance)
    return failed


def check_sharded(baseline, fresh, tolerance):
    """Sharded-engine gate: per-workload regression + the core-count-aware
    2x-over-batched floor.

    Each fresh workload entry records the same-run batched reference
    (``batched_packets_per_sec``), the shard count, and the measuring
    host's ``cpu_count``; the floor is enforced only when the host has at
    least as many cores as shards — a 4-shard engine cannot beat its own
    single-process twin on one core, and pretending otherwise would make
    the gate machine-dependent in exactly the way baselines must not be.
    """
    failed = False
    for workload in sorted(baseline):
        if workload not in fresh:
            print(f"fresh sharded results lack workload {workload!r}")
            failed = True
            continue
        failed |= _check(f"sharded/{workload} packets_per_sec",
                         float(baseline[workload]["packets_per_sec"]),
                         float(fresh[workload]["packets_per_sec"]),
                         tolerance)
    for workload in sorted(fresh):
        entry = fresh[workload]
        shards = int(entry.get("shards", 0))
        cores = int(entry.get("cpu_count", 0))
        batched_pps = float(entry.get("batched_packets_per_sec", 0.0))
        if not batched_pps:
            continue
        if cores < shards:
            print(f"{'sharded/' + workload + ' floor':>34}: SKIPPED — host "
                  f"has {cores} core(s) for {shards} shards; the "
                  f"{SHARDED_SPEEDUP_FLOOR:.0f}x-over-batched floor needs "
                  f"cores >= shards to be meaningful")
            continue
        failed |= check_floor(f"sharded/{workload} speedup vs batched",
                              float(entry["packets_per_sec"]), batched_pps,
                              SHARDED_SPEEDUP_FLOOR, tolerance)
    return failed


def main() -> int:
    """Compare fresh benchmark output against the committed baselines."""
    tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.9"))
    if not BASELINE.exists():
        print(f"no committed baseline at {BASELINE}; nothing to compare")
        return 1
    ran = failed = False
    if FRESH.exists():
        ran = True
        failed |= check_exact(json.loads(BASELINE.read_text()),
                              json.loads(FRESH.read_text()), tolerance)
    if FRESH_BATCHED.exists():
        ran = True
        if not BASELINE_BATCHED.exists():
            print(f"no committed batched baseline at {BASELINE_BATCHED}")
            failed = True
        else:
            # Speedup floor prefers the same-machine fresh exact
            # measurement; falls back to the committed exact baseline.
            exact_source = FRESH if FRESH.exists() else BASELINE
            exact_pps = float(
                json.loads(exact_source.read_text())["packets_per_sec"])
            failed |= check_batched(
                json.loads(BASELINE_BATCHED.read_text()),
                json.loads(FRESH_BATCHED.read_text()),
                exact_pps, exact_source.name, tolerance)
    if FRESH_SHARDED.exists():
        ran = True
        if not BASELINE_SHARDED.exists():
            print(f"no committed sharded baseline at {BASELINE_SHARDED}")
            failed = True
        else:
            failed |= check_sharded(
                json.loads(BASELINE_SHARDED.read_text()),
                json.loads(FRESH_SHARDED.read_text()), tolerance)
    if not ran:
        print(f"no fresh results at {FRESH}, {FRESH_BATCHED}, or "
              f"{FRESH_SHARDED}; run the benchmarks/bench_fabric_*.py "
              "suites first")
        return 1
    if failed:
        print("throughput regression gate FAILED")
        return 1
    print("throughput regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
