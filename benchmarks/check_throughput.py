"""Throughput-regression gate for CI.

Compares a freshly measured ``benchmarks/results/BENCH_throughput.json``
(written by ``bench_fabric_throughput.py``) against the committed baseline
``benchmarks/BENCH_throughput.json`` and exits non-zero when events/s or
packets/s fall below ``tolerance x baseline``. The tolerance is a *ratio*
(default 0.9, overridable via ``REPRO_BENCH_TOLERANCE``); CI machines are
noisy, so the gate only catches structural regressions — a complexity bug,
not a few percent of jitter.

Being *faster* than the baseline never fails; refresh the baseline by
copying the fresh results file over it when a change legitimately shifts
throughput.

Usage: ``python benchmarks/check_throughput.py`` (after running the
benchmark), or ``make bench-throughput`` for the full sequence.
"""

import json
import os
import sys
from pathlib import Path

HERE = Path(__file__).parent
BASELINE = HERE / "BENCH_throughput.json"
FRESH = HERE / "results" / "BENCH_throughput.json"
METRICS = ("events_per_sec", "packets_per_sec")


def main() -> int:
    """Compare fresh benchmark output against the committed baseline."""
    tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.9"))
    if not BASELINE.exists():
        print(f"no committed baseline at {BASELINE}; nothing to compare")
        return 1
    if not FRESH.exists():
        print(f"no fresh results at {FRESH}; run "
              "`pytest benchmarks/bench_fabric_throughput.py` first")
        return 1
    baseline = json.loads(BASELINE.read_text())
    fresh = json.loads(FRESH.read_text())

    failed = False
    for metric in METRICS:
        base = float(baseline[metric])
        new = float(fresh[metric])
        ratio = new / base if base else float("inf")
        status = "ok"
        if new < base * tolerance:
            status = f"REGRESSION (below {tolerance:.0%} of baseline)"
            failed = True
        print(f"{metric:>16}: baseline {base:>12,.0f}  fresh {new:>12,.0f}  "
              f"({ratio:6.2f}x)  {status}")
    if failed:
        print("throughput regression gate FAILED")
        return 1
    print("throughput regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
