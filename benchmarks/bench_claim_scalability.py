"""A7 (supporting §7) — "our approach can mark very large networks...
making it highly scalable."

Two scalability axes measured: identification stays exact and O(1)-per-
packet as the network grows to Table 3's maxima (128x128 mesh, 16-cube),
and victim-side decode throughput is flat in network size (DDPM decodes a
fixed 16-bit word; PPM reconstruction cost grows with the mark set).
"""

import time

import numpy as np

from repro.marking import DdpmScheme
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import DimensionOrderRouter, MinimalAdaptiveRouter, RandomPolicy, walk_route
from repro.topology import Hypercube, Mesh, Torus
from repro.util.tables import TextTable


def _identify_many(topology, trials, seed):
    """Mark + identify ``trials`` random-pair packets; returns (exact, secs/id)."""
    scheme = DdpmScheme()
    scheme.attach(topology)
    rng = np.random.default_rng(seed)
    select = RandomPolicy(rng).binder()
    router = MinimalAdaptiveRouter()
    packets = []
    truths = []
    for _ in range(trials):
        src, dst = rng.integers(topology.num_nodes, size=2)
        if src == dst:
            continue
        path = walk_route(topology, router, int(src), int(dst), select)
        packet = Packet(IPHeader(1, 2), int(src), int(dst))
        scheme.on_inject(packet, int(src))
        for u, v in zip(path[:-1], path[1:]):
            scheme.on_hop(packet, u, v)
        packets.append((packet, int(dst)))
        truths.append(int(src))
    start = time.perf_counter()
    identified = [scheme.identify(p, d) for p, d in packets]
    elapsed = time.perf_counter() - start
    exact = sum(1 for got, want in zip(identified, truths) if got == want)
    return exact, len(packets), elapsed / max(len(packets), 1)


def test_claim_scalability_identify_cost_flat(benchmark, report):
    def measure():
        rows = []
        for name, topo in (("mesh 8x8 (64)", Mesh((8, 8))),
                           ("mesh 32x32 (1024)", Mesh((32, 32))),
                           ("mesh 128x128 (16384)", Mesh((128, 128))),
                           ("torus 16x16 (256)", Torus((16, 16))),
                           ("hypercube 2^10 (1024)", Hypercube(10)),
                           ("hypercube 2^14 (16384)", Hypercube(14))):
            exact, total, per_id = _identify_many(topo, 30, seed=1)
            rows.append((name, total, exact, per_id * 1e6))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["network (nodes)", "packets", "exact",
                       "victim decode us/packet"])
    for name, total, exact, us in rows:
        table.add_row([name, total, exact, f"{us:.1f}"])
    report("Claim (scalability) - DDPM identification cost vs network size",
           table.render())
    for name, total, exact, us in rows:
        assert exact == total, name
    # Decode cost varies by dimensionality, not node count: the largest
    # network is no more than ~4x the smallest (same-family comparison is
    # tighter, asserted below).
    by_name = {name: us for name, _, _, us in rows}
    assert by_name["mesh 128x128 (16384)"] < 4 * by_name["mesh 8x8 (64)"]


def test_claim_scalability_full_fabric_1024_nodes(benchmark, report, runner):
    """End-to-end DDoS on a 1024-node torus through the event-driven fabric,
    expressed as one declarative config on the experiment runner."""
    from repro.core import ExperimentConfig, MarkingSpec, RoutingSpec, SelectionSpec, TopologySpec

    topology = Torus((32, 32))
    rng = np.random.default_rng(1)
    victim = topology.index((16, 16))
    attackers = tuple(int(a) for a in rng.choice(1024, size=8, replace=False)
                      if a != victim)[:6]
    config = ExperimentConfig(
        topology=TopologySpec("torus", (32, 32)),
        routing=RoutingSpec("minimal-adaptive"),
        marking=MarkingSpec("ddpm"),
        selection=SelectionSpec("random"),
        seed=1, victim=victim, attackers=attackers,
        attack_rate_per_node=25.0, duration=2.0, background_rate=0.0,
    )

    result = benchmark.pedantic(runner.run, args=(config,),
                                rounds=1, iterations=1)
    report("Claim (scalability) - 1024-node torus end-to-end",
           f"delivered {result.packets_delivered} spoofed packets; "
           f"suspects == attackers: {result.score.exact} "
           f"({len(result.attackers)} attackers)")
    assert result.score.exact
    assert frozenset(result.suspects) == frozenset(attackers)
