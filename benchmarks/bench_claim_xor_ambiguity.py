"""A4 — XOR-encoding reconstruction ambiguity (paper §4.2).

"One XOR value is mapped into average n(n-1)/log n edges... as the mesh
size increases, the ambiguity also increases." Exact collision counts per
XOR value vs mesh size, compared against the paper's estimate, plus the
downstream effect: candidate-edge explosion at the victim.
"""

from repro.analysis.ambiguity import paper_xor_ambiguity, xor_ambiguity_exact
from repro.marking.ppm_encoding import XorEncoder
from repro.topology import Hypercube, Mesh
from repro.util.tables import TextTable


def test_claim_a4_ambiguity_vs_size(benchmark, report):
    def measure():
        rows = []
        for n in (4, 8, 16, 32):
            stats = xor_ambiguity_exact(Mesh((n, n)))
            rows.append((f"{n}x{n} mesh", stats["total_edges"],
                         stats["distinct_xor_values"],
                         stats["mean_edges_per_value"],
                         stats["max_edges_per_value"],
                         paper_xor_ambiguity(n)))
        return rows

    rows = benchmark(measure)
    table = TextTable(["topology", "edges", "distinct XOR values",
                       "mean edges/value", "max edges/value",
                       "paper estimate n(n-1)/log n"])
    for name, edges, values, mean, mx, paper in rows:
        table.add_row([name, edges, values, f"{mean:.1f}", mx, f"{paper:.1f}"])
    report("Claim A4 - XOR encoding ambiguity vs mesh size", table.render())
    means = [row[3] for row in rows]
    assert all(a < b for a, b in zip(means, means[1:]))  # strictly grows
    # Same order of magnitude as the paper's estimate.
    for _, _, _, mean, _, paper in rows:
        assert 0.1 < mean / paper < 10.0


def test_claim_a4_candidate_explosion_at_victim(benchmark, report):
    """One observed XOR mark decodes to many physical edges."""

    def measure():
        rows = []
        for name, topo in (("8x8 mesh", Mesh((8, 8))),
                           ("2^6 hypercube", Hypercube(6))):
            encoder = XorEncoder()
            encoder.attach(topo)
            u = 0
            v = topo.neighbors(0)[0]
            word = encoder.write_start(0, u)
            word = encoder.write_continue(word, v)
            word = encoder.write_continue(word, topo.neighbors(v)[0])
            candidates = encoder.candidate_edges(word, topo.num_nodes - 1)
            rows.append((name, len(candidates)))
        return rows

    rows = benchmark(measure)
    table = TextTable(["topology", "candidate edges for ONE mark"])
    for row in rows:
        table.add_row(row)
    report("Claim A4 - per-mark candidate explosion", table.render())
    for _, count in rows:
        assert count > 10  # a single mark is hopelessly ambiguous
