"""A8 (§2 related work) — baseline landscape: packets-to-identify per scheme.

Places every implemented traceback scheme on one axis for the same
deterministic flow: DDPM (1 packet), Song-Perrig advanced marking (tens —
and ~8x fewer than Savage fragments, their headline claim), full-index PPM
(tens to hundreds), fragment PPM (thousands). Also records each scheme's
field-size ceiling, tying the comparison back to Tables 1-3.
"""

import numpy as np

from repro.defense.metrics import packets_until_identified
from repro.marking import (
    AdvancedPpmScheme,
    DdpmScheme,
    FragmentPpmScheme,
    FullIndexEncoder,
    PpmScheme,
)
from repro.marking.ppm_fragment import FragmentEncoder
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import DimensionOrderRouter, walk_route
from repro.topology import Mesh
from repro.util.tables import TextTable


def _stream(topology, scheme, src, dst, count):
    path = walk_route(topology, DimensionOrderRouter(), src, dst,
                      lambda c, cur: c[0])
    for _ in range(count):
        packet = Packet(IPHeader(1, 2), src, dst)
        scheme.on_inject(packet, src)
        for u, v in zip(path[:-1], path[1:]):
            packet.header.decrement_ttl()
            scheme.on_hop(packet, u, v)
        yield packet


def test_claim_related_work_landscape(benchmark, report):
    def measure():
        topology = Mesh((6, 6))
        src, victim = 0, 35
        rows = []

        ddpm = DdpmScheme()
        ddpm.attach(topology)
        rows.append(("ddpm", packets_until_identified(
            ddpm.new_victim_analysis(victim),
            _stream(topology, ddpm, src, victim, 10), {src}),
            "any cluster <= Table 3 limits"))

        advanced = AdvancedPpmScheme(0.2, np.random.default_rng(1))
        advanced.attach(topology)
        rows.append(("ppm-advanced (Song-Perrig)", packets_until_identified(
            advanced.new_victim_analysis(victim),
            _stream(topology, advanced, src, victim, 50000), {src},
            check_every=10), "hash width fixed; needs victim map"))

        full = PpmScheme(FullIndexEncoder(), 0.2, np.random.default_rng(1))
        full.attach(Mesh((6, 6)))
        rows.append(("ppm-full (Savage simple)", packets_until_identified(
            full.new_victim_analysis(victim),
            _stream(Mesh((6, 6)), full, src, victim, 50000), {src},
            check_every=10), "<= 8x8 only (Table 1)"))

        # k=8 fragments, as in Savage's original and the paper's quoted
        # k ln(kd) bound.
        fragment = FragmentPpmScheme(0.2, np.random.default_rng(1),
                                     encoder=FragmentEncoder(num_fragments=8,
                                                             check_bits=4))
        fragment.attach(Mesh((6, 6)))
        rows.append(("ppm-fragment (Savage full, k=8)", packets_until_identified(
            fragment.new_victim_analysis(victim),
            _stream(Mesh((6, 6)), fragment, src, victim, 200000), {src},
            check_every=200), "large networks; combinatorial victim cost"))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["scheme", "packets to identify", "applicability"])
    for row in rows:
        table.add_row(row)
    report("Claim A8 (related work) - packets-to-identify landscape, "
           "6x6 mesh deterministic flow", table.render())

    needed = {name: n for name, n, _ in rows}
    assert needed["ddpm"] == 1
    assert needed["ppm-advanced (Song-Perrig)"] is not None
    assert needed["ppm-fragment (Savage full, k=8)"] is not None
    # Song & Perrig's §2 claim: well under 1/8th of the fragment scheme.
    assert (needed["ppm-advanced (Song-Perrig)"] * 8
            <= needed["ppm-fragment (Savage full, k=8)"])
    # And DDPM beats everything by orders of magnitude.
    assert needed["ppm-advanced (Song-Perrig)"] > 5
