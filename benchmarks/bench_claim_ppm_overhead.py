"""A1 — PPM traffic overhead vs path length (paper §2/§4.2).

The paper's quantitative case against PPM in clusters: the victim needs
~ k ln(kd) / (p (1-p)^(d-1)) packets for a d-hop path, and cluster
diameters (62 for a 32x32 mesh) dwarf Internet paths (~15). Reproduced two
ways: the analytic series, and measured packets-to-identify on simulated
line networks of growing length.
"""

import numpy as np

from repro.analysis.ppm_model import (
    expected_packets_bound,
    expected_packets_savage,
    optimal_marking_probability,
)
from repro.defense.metrics import packets_until_identified
from repro.marking import FullIndexEncoder, PpmScheme
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import DimensionOrderRouter, walk_route
from repro.topology import Mesh
from repro.util.tables import TextTable


def test_claim_a1_analytic_series(benchmark, report):
    def series():
        rows = []
        for d, where in ((5, "small cluster"), (15, "Internet average"),
                         (30, "16x16 mesh diam."), (62, "32x32 mesh diam."),
                         (126, "64x64 mesh diam.")):
            p = 0.04  # Savage's Internet-tuned probability
            rows.append((d, where, expected_packets_savage(d, p),
                         expected_packets_bound(d, p, k=8),
                         optimal_marking_probability(d)))
        return rows

    rows = benchmark(series)
    table = TextTable(["path length d", "regime", "E[pkts] single",
                       "E[pkts] k=8 fragments", "optimal p"])
    for d, where, single, frag, opt in rows:
        table.add_row([d, where, f"{single:,.0f}", f"{frag:,.0f}", f"{opt:.3f}"])
    report("Claim A1 - PPM expected packets vs path length (p=0.04)",
           table.render())
    by_d = {d: single for d, _, single, _, _ in rows}
    assert by_d[62] > 10 * by_d[15] / 2  # cluster diameters blow the budget
    assert by_d[126] > by_d[62] > by_d[30] > by_d[15]


def _measure_packets_to_identify(length, probability, seed, budget=30000):
    """Packets until PPM reconstructs the full path on a line network."""
    line = Mesh((1, length + 1))
    scheme = PpmScheme(FullIndexEncoder(), probability,
                       np.random.default_rng(seed))
    scheme.attach(line)
    victim = length
    path = list(range(length + 1))

    def packet_stream():
        while True:
            packet = Packet(IPHeader(1, 2), 0, victim)
            scheme.on_inject(packet, 0)
            for u, v in zip(path[:-1], path[1:]):
                scheme.on_hop(packet, u, v)
            yield packet

    analysis = scheme.new_victim_analysis(victim)
    stream = packet_stream()
    packets = (next(stream) for _ in range(budget))
    return packets_until_identified(analysis, packets, {0}, check_every=25)


def test_claim_a1_simulated_growth(benchmark, report):
    def measure():
        rows = []
        for d in (4, 8, 12):
            p = optimal_marking_probability(d)
            needed = _measure_packets_to_identify(d, p, seed=d)
            rows.append((d, p, needed, expected_packets_savage(d, p)))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["path length d", "p = 1/d", "measured packets",
                       "analytic bound"])
    for d, p, needed, bound in rows:
        table.add_row([d, f"{p:.3f}", needed, f"{bound:,.0f}"])
    report("Claim A1 - measured PPM packets-to-identify vs path length",
           table.render())
    needed = [n for _, _, n, _ in rows]
    assert all(n is not None for n in needed)
    assert needed[0] < needed[-1]  # overhead grows with distance
    # The analytic expression upper-bounds the measured expectation loosely.
    for d, p, measured, bound in rows:
        assert measured < 4 * bound
