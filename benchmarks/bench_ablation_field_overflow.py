"""AB1 — DDPM field-capacity ablation under non-minimal routing.

DESIGN.md decision #3/#4: overflow must be an explicit error, never silent
corruption. Three facts verified here: (1) on a mesh the accumulated vector
telescopes to (current - source), so NO misroute budget can overflow a
correctly-sized slot; (2) on a torus the per-write modular fold keeps even
looping routes in range; (3) an undersized field fails loudly at attach
time, at exactly the Table 3 boundary.
"""

import numpy as np
import pytest

from repro.errors import FieldLayoutError
from repro.marking import DdpmScheme
from repro.marking.ddpm_layout import DdpmLayout
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import FullyAdaptiveRouter, RandomPolicy, walk_route
from repro.topology import Mesh, Torus
from repro.util.tables import TextTable


def test_ablation_misroute_budget_never_overflows(benchmark, report):
    def measure():
        rng = np.random.default_rng(0)
        select = RandomPolicy(rng).binder()
        rows = []
        for topo_name, topo in (("mesh 8x8", Mesh((8, 8))),
                                ("torus 8x8", Torus((8, 8)))):
            scheme = DdpmScheme()
            scheme.attach(topo)
            router = FullyAdaptiveRouter(prefer_minimal=False)
            for budget in (0, 4, 16, 64):
                worst_detour = 0
                exact = 0
                trials = 40
                for _ in range(trials):
                    src, dst = rng.integers(topo.num_nodes, size=2)
                    if src == dst:
                        exact += 1
                        continue
                    path = walk_route(topo, router, int(src), int(dst), select,
                                      misroute_budget=budget, max_hops=600)
                    worst_detour = max(worst_detour,
                                       len(path) - 1 - topo.min_hops(int(src), int(dst)))
                    packet = Packet(IPHeader(1, 2), int(src), int(dst))
                    scheme.on_inject(packet, int(src))
                    for u, v in zip(path[:-1], path[1:]):
                        scheme.on_hop(packet, u, v)  # raises on overflow
                    if scheme.identify(packet, int(dst)) == src:
                        exact += 1
                rows.append((topo_name, budget, worst_detour, exact / trials))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["topology", "misroute budget", "worst detour (hops)",
                       "exactness"])
    for name, budget, detour, exactness in rows:
        table.add_row([name, budget, detour, f"{exactness:.0%}"])
    report("Ablation AB1 - DDPM exactness vs misroute budget "
           "(no overflow ever raised)", table.render())
    assert all(row[3] == 1.0 for row in rows)
    assert max(row[2] for row in rows) > 0  # misrouting actually happened


def test_ablation_capacity_boundary(benchmark, report):
    """Attach succeeds at the Table 3 boundary and fails one step past it."""

    def measure():
        rows = []
        for dims in ((128, 128), (129, 129), (256, 64), (256, 128),
                     (16, 16, 32)):
            try:
                DdpmLayout(dims, signed=True)
                rows.append(("x".join(map(str, dims)), "fits"))
            except FieldLayoutError:
                rows.append(("x".join(map(str, dims)), "REJECTED at attach"))
        return rows

    rows = benchmark(measure)
    table = TextTable(["dims", "16-bit MF outcome"])
    for row in rows:
        table.add_row(row)
    report("Ablation AB1 - capacity boundary behavior", table.render())
    outcome = dict(rows)
    assert outcome["128x128"] == "fits"
    assert outcome["129x129"] == "REJECTED at attach"   # 9 + 9 signed bits
    assert outcome["256x64"] == "fits"                  # 9 + 7 = 16 exactly
    assert outcome["256x128"] == "REJECTED at attach"   # 9 + 8 = 17
    assert outcome["16x16x32"] == "fits"


def test_ablation_torus_loop_folding(benchmark, report):
    """A pathological looping walk on a ring: raw accumulation would need
    unbounded bits; the folded representation never leaves the slot."""

    def measure():
        ring = Torus((16,))
        scheme = DdpmScheme()
        scheme.attach(ring)
        packet = Packet(IPHeader(1, 2), 0, 8)
        scheme.on_inject(packet, 0)
        node = 0
        laps = 5
        raw_accum = 0
        for _ in range(laps * 16 + 8):  # five full laps plus the real trip
            nxt = (node + 1) % 16
            scheme.on_hop(packet, node, nxt)
            raw_accum += 1
            node = nxt
        stored = scheme.layout.decode(packet.header.identification)
        return raw_accum, stored, scheme.identify(packet, node)

    raw, stored, identified = benchmark(measure)
    report("Ablation AB1 - torus loop folding",
           f"walk of {raw} forward hops (5 laps + 8); stored vector {stored}; "
           f"identified source {identified} (true 0)")
    assert raw == 88
    assert stored == (8,)  # 88 mod 16 = 8 (the +k/2 tie resolves positive)
    assert identified == 0
