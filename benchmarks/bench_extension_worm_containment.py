"""E4 — second-generation DDoS (§1): worm containment powered by DDPM.

The paper motivates with worms whose "total traffic increases
exponentially". This series measures the end state of an outbreak in a
6-cube with and without DDPM-driven containment (every node traces worm
senders from the marking field and blocks them at their injection switch),
across scan rates. Expected shape: unchecked infections saturate once the
scan rate clears the epidemic threshold; containment caps the outbreak at a
small fraction regardless of rate.
"""

import numpy as np

from repro.attack.worm import WormOutbreak
from repro.defense.filtering import SourceBlockTable
from repro.marking import DdpmScheme
from repro.network import Fabric
from repro.network.packet import PacketKind
from repro.routing import MinimalAdaptiveRouter, RandomPolicy
from repro.topology import Hypercube
from repro.util.tables import TextTable

HORIZON = 25.0


def _run(scan_rate, contain, seed):
    topology = Hypercube(6)
    scheme = DdpmScheme()
    fabric = Fabric(topology, MinimalAdaptiveRouter(), marking=scheme,
                    selection=RandomPolicy(np.random.default_rng(seed)))
    worm = WormOutbreak(fabric, seeds=(0,), scan_rate=scan_rate,
                        rng=np.random.default_rng(seed + 1),
                        infection_probability=0.8, horizon=HORIZON)
    blocked = SourceBlockTable()
    if contain:
        blocked.install(fabric)

        def monitor(event):
            if event.packet.kind is PacketKind.WORM:
                blocked.block(scheme.identify(event.packet, event.node))

        for node in topology.nodes():
            fabric.add_delivery_handler(node, monitor)
    fabric.run_until(HORIZON)
    return worm.infected_count, len(blocked.blocked)


def test_extension_worm_containment_series(benchmark, report):
    def measure():
        rows = []
        for scan_rate in (0.5, 2.0, 8.0):
            unchecked, _ = _run(scan_rate, contain=False, seed=11)
            contained, quarantined = _run(scan_rate, contain=True, seed=11)
            rows.append((scan_rate, unchecked, contained, quarantined))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["scan rate", "infected (no defense)",
                       "infected (DDPM containment)", "nodes quarantined"])
    for row in rows:
        table.add_row(row)
    report("Extension E4 - worm containment vs scan rate (64-node 6-cube, "
           f"horizon {HORIZON})", table.render())

    by_rate = {rate: (unchecked, contained) for rate, unchecked, contained, _ in rows}
    # Fast worm saturates without defense...
    assert by_rate[8.0][0] == 64
    # ...and containment keeps every outbreak below saturation; slower worms
    # are caught early (blocking races propagation, so a very fast scanner
    # still infects a large share before every infected node is traced).
    for rate, (unchecked, contained) in by_rate.items():
        assert contained < unchecked
    assert by_rate[0.5][1] < 16
    assert by_rate[2.0][1] < 32


def test_extension_worm_traffic_growth(benchmark, report):
    """'Its total traffic increases exponentially' — scans sent over time."""

    def measure():
        topology = Hypercube(6)
        fabric = Fabric(topology, MinimalAdaptiveRouter(),
                        selection=RandomPolicy(np.random.default_rng(3)))
        worm = WormOutbreak(fabric, seeds=(0,), scan_rate=2.0,
                            rng=np.random.default_rng(4),
                            infection_probability=0.8, horizon=12.0)
        samples = []
        for t in (2.0, 4.0, 6.0, 8.0, 10.0, 12.0):
            fabric.run_until(t)
            samples.append((t, worm.infected_count, worm.scans_sent))
        return samples

    samples = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = TextTable(["time", "infected", "cumulative scans"])
    for row in samples:
        table.add_row(row)
    report("Extension E4 - aggregate worm traffic growth", table.render())
    scans = [s for _, _, s in samples]
    infected = [i for _, i, _ in samples]
    assert infected[-1] > infected[0]
    # Super-linear growth while the epidemic expands: the scan increment in
    # the second half dwarfs the first half's.
    first_half = scans[2] - scans[0]
    second_half = scans[-1] - scans[3]
    assert second_half > 2 * first_half
