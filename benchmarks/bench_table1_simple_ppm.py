"""T1 — regenerate Table 1: scalability of simple (full-index) PPM.

Paper values: an n x n mesh/torus needs 2 log(n^2) + log(2n) bits, maxing
out the 16-bit MF at 8 x 8 (64 nodes); an n-cube hypercube maxes at 2^6.
"""

from repro.analysis.scalability import render_table, table1
from repro.marking.ppm_encoding import FullIndexEncoder
from repro.topology import Mesh
from repro.util.tables import TextTable


def test_table1_scalability(benchmark, report):
    rows = benchmark(table1)
    report("Table 1 - Scalability of simple PPM",
           render_table(rows, "Paper: 8x8 mesh/torus (64 nodes); 2^6 hypercube"))
    assert rows[0]["max_side"] == 8
    assert rows[0]["max_nodes"] == 64
    assert rows[1]["max_dim"] == 6
    assert rows[1]["max_nodes"] == 64


def test_table1_bit_budget_sweep(benchmark, report):
    """Required bits vs mesh side, showing where the 16-bit line is crossed."""
    from repro.analysis.scalability import simple_ppm_required_bits_mesh

    def sweep():
        return [(n, simple_ppm_required_bits_mesh(n)) for n in (2, 4, 8, 9, 16, 32)]

    values = benchmark(sweep)
    table = TextTable(["n (side)", "nodes", "required bits", "fits 16-bit MF"])
    for n, bits in values:
        table.add_row([n, n * n, bits, "yes" if bits <= 16 else "no"])
    report("Table 1 sweep - simple PPM bit budget vs mesh side", table.render())
    fits = {n: bits <= 16 for n, bits in values}
    assert fits[8] and not fits[9]


def test_table1_encoder_agrees_with_formula(benchmark, report):
    """The real wire-format encoder allocates exactly the analytic bits."""
    from repro.analysis.scalability import simple_ppm_required_bits_mesh

    def check():
        out = []
        for n in (4, 8):
            encoder = FullIndexEncoder()
            encoder.attach(Mesh((n, n)))
            out.append((n, encoder.layout.used_bits,
                        simple_ppm_required_bits_mesh(n)))
        return out

    rows = benchmark(check)
    table = TextTable(["n", "encoder bits", "formula bits"])
    for row in rows:
        table.add_row(row)
    report("Table 1 cross-check - encoder vs formula", table.render())
    for _, enc_bits, formula_bits in rows:
        assert enc_bits == formula_bits
