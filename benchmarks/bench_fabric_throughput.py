"""Simulator-engineering benchmark: fabric event throughput.

Not a paper artifact — a performance-regression guard for the simulator
itself (guides: measure before optimizing). Reports delivered packets and
executed events per wall-second on a standard uniform-random workload, so a
future change that quietly makes the event loop quadratic fails here first.

Besides the human-readable artifact, the run writes
``benchmarks/results/BENCH_throughput.json`` with the machine-readable
numbers; ``benchmarks/check_throughput.py`` compares that file against the
committed baseline ``benchmarks/BENCH_throughput.json`` and fails CI on a
large regression.
"""

import json
from pathlib import Path

import numpy as np

from repro.attack.traffic import UniformRandomPattern, schedule_background
from repro.marking import DdpmScheme
from repro.network import Fabric
from repro.routing import LeastCongestedPolicy, MinimalAdaptiveRouter
from repro.topology import Torus

RESULTS_JSON = Path(__file__).parent / "results" / "BENCH_throughput.json"


def _build_loaded_fabric(seed=0):
    topology = Torus((8, 8))
    scheme = DdpmScheme()
    fabric = Fabric(topology, MinimalAdaptiveRouter(), marking=scheme)
    fabric.selection = LeastCongestedPolicy(fabric.congestion,
                                            np.random.default_rng(seed))
    rng = np.random.default_rng(seed + 1)
    schedule_background(fabric, UniformRandomPattern(), rate=25.0,
                        duration=2.0, rng=rng)
    return fabric


def test_fabric_event_throughput(benchmark, report):
    def run():
        fabric = _build_loaded_fabric()
        fabric.run()
        return fabric.counters["delivered"], fabric.sim.events_executed

    delivered, events = benchmark(run)
    mean_s = benchmark.stats.stats.mean
    report("Engineering - fabric throughput (64-node torus, adaptive routing, "
           "DDPM marking)",
           f"{delivered} packets delivered, {events} events per run; "
           f"{events / mean_s:,.0f} events/s, {delivered / mean_s:,.0f} "
           "packets/s (wall clock)")
    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(json.dumps({
        "delivered": int(delivered),
        "events": int(events),
        "mean_seconds": mean_s,
        "events_per_sec": events / mean_s,
        "packets_per_sec": delivered / mean_s,
    }, indent=2) + "\n")
    # Structural sanity only: the workload itself must have run. Throughput
    # regression detection lives in check_throughput.py, which compares
    # against the committed baseline with a configurable relative tolerance
    # (REPRO_BENCH_TOLERANCE) instead of a machine-dependent absolute floor.
    assert delivered > 0 and events > delivered
