"""F1 — regenerate Figure 1's topology gallery with metric checks.

Paper: (a) 4x4 2-D mesh — degree 4, diameter 6; (b) 4-ary 2-cube;
(c) 3-cube hypercube — degree = diameter = n.
"""

from repro.topology import Hypercube, Mesh, Torus
from repro.topology.properties import average_distance, diameter, is_connected
from repro.util.tables import TextTable


def _gallery():
    topologies = [
        ("2-D mesh 4x4 (Fig 1a)", Mesh((4, 4))),
        ("4-ary 2-cube (Fig 1b)", Torus((4, 4))),
        ("3-cube hypercube (Fig 1c)", Hypercube(3)),
    ]
    rows = []
    for name, topo in topologies:
        rows.append({
            "name": name,
            "nodes": topo.num_nodes,
            "links": len(topo.links),
            "degree": topo.degree(),
            "diameter_analytic": topo.diameter(),
            "diameter_bfs": diameter(topo),
            "avg_distance": average_distance(topo),
            "connected": is_connected(topo),
        })
    return rows


def test_figure1_gallery(benchmark, report):
    rows = benchmark(_gallery)
    table = TextTable(["topology", "nodes", "links", "degree",
                       "diameter", "avg distance"])
    for row in rows:
        table.add_row([row["name"], row["nodes"], row["links"], row["degree"],
                       row["diameter_analytic"], f"{row['avg_distance']:.2f}"])
    report("Figure 1 - Direct-network topology gallery", table.render())
    mesh, torus, cube = rows
    assert (mesh["degree"], mesh["diameter_analytic"]) == (4, 6)  # paper text
    assert (torus["degree"], torus["diameter_analytic"]) == (4, 4)
    assert (cube["degree"], cube["diameter_analytic"]) == (3, 3)
    for row in rows:
        assert row["diameter_analytic"] == row["diameter_bfs"]
        assert row["connected"]


def test_figure1_scaling_series(benchmark, report):
    """Degree/diameter formulas across sizes — the §3 definitions as data."""

    def series():
        rows = []
        for n in (4, 8, 16):
            rows.append((f"mesh {n}x{n}", Mesh((n, n)).degree(),
                         Mesh((n, n)).diameter()))
            rows.append((f"torus {n}x{n}", Torus((n, n)).degree(),
                         Torus((n, n)).diameter()))
        for n in (3, 6, 10):
            rows.append((f"{n}-cube", Hypercube(n).degree(),
                         Hypercube(n).diameter()))
        return rows

    rows = benchmark(series)
    table = TextTable(["topology", "degree", "diameter"])
    for row in rows:
        table.add_row(row)
    report("Figure 1 series - degree/diameter scaling", table.render())
    lookup = {name: (deg, diam) for name, deg, diam in rows}
    assert lookup["mesh 16x16"] == (4, 30)      # 2n, sum(k-1)
    assert lookup["torus 16x16"] == (4, 16)     # 2n, sum(k/2)
    assert lookup["10-cube"] == (10, 10)        # n, n
