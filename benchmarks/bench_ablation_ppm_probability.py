"""AB2 — PPM marking-probability ablation.

Savage's trade-off: large p means near marks drown far marks (the farthest
edge's survival p(1-p)^(d-1) collapses); small p means all marks are rare.
The optimum sits near p = 1/d. Measured packets-to-identify across a p
sweep on a fixed-length path, against the analytic expectation.
"""

import numpy as np

from repro.analysis.ppm_model import expected_packets_savage, optimal_marking_probability
from repro.defense.metrics import packets_until_identified
from repro.marking import FullIndexEncoder, PpmScheme
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import DimensionOrderRouter, walk_route
from repro.topology import Mesh
from repro.util.tables import TextTable

PATH_LENGTH = 10  # hops (1 x 11 line network)


def _measure(probability, seed, budget=60000):
    line = Mesh((1, PATH_LENGTH + 1))
    scheme = PpmScheme(FullIndexEncoder(), probability,
                       np.random.default_rng(seed))
    scheme.attach(line)
    victim = PATH_LENGTH
    path = list(range(PATH_LENGTH + 1))

    def stream():
        for _ in range(budget):
            packet = Packet(IPHeader(1, 2), 0, victim)
            scheme.on_inject(packet, 0)
            for u, v in zip(path[:-1], path[1:]):
                scheme.on_hop(packet, u, v)
            yield packet

    analysis = scheme.new_victim_analysis(victim)
    return packets_until_identified(analysis, stream(), {0}, check_every=25)


def test_ablation_marking_probability_sweep(benchmark, report):
    def sweep():
        rows = []
        for p in (0.02, 0.05, 0.1, 0.2, 0.4, 0.7):
            measured = [_measure(p, seed) for seed in range(3)]
            measured = [m for m in measured if m is not None]
            median = sorted(measured)[len(measured) // 2] if measured else None
            rows.append((p, median, expected_packets_savage(PATH_LENGTH, p)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    optimum = optimal_marking_probability(PATH_LENGTH)
    table = TextTable(["p", "measured packets (median of 3)",
                       "analytic ln(d)/(p(1-p)^(d-1))"])
    for p, measured, analytic in rows:
        table.add_row([p, measured if measured is not None else "not converged",
                       f"{analytic:,.0f}"])
    report(f"Ablation AB2 - PPM probability sweep (d={PATH_LENGTH}, "
           f"analytic optimum p={optimum:.2f})", table.render())

    by_p = {p: m for p, m, _ in rows}
    # The mid-range probabilities dominate both extremes.
    assert by_p[0.1] is not None
    assert by_p[0.7] is None or by_p[0.7] > by_p[0.1]
    assert by_p[0.02] is None or by_p[0.02] > by_p[0.1]
