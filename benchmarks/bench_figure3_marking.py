"""F3 — regenerate Figure 3: the paper's marking walkthroughs, verbatim.

(a) simple PPM marks received by victim 1110 on the 4x4 mesh;
(b) DDPM distance-vector evolution for the adaptive mesh walk
    (1,1) -> (2,3);
(c) DDPM on the 3-cube from (1,1,0) to (0,0,0) with XOR accumulation.
"""

from repro.marking import DdpmScheme, FullIndexEncoder, gray_label, gray_unlabel
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.topology import Hypercube, Mesh
from repro.util.tables import TextTable


def test_figure3a_ppm_marks(benchmark, report):
    """Both mark streams of Figure 3(a), forced switch by switch."""

    def marks():
        mesh = Mesh((4, 4))
        enc = FullIndexEncoder()
        enc.attach(mesh)
        by_label = {gray_label(mesh, n): n for n in mesh.nodes()}
        out = []
        for labels in ([0b0001, 0b0011, 0b0010, 0b0110, 0b1110],
                       [0b0101, 0b0111, 0b0110, 0b1110]):
            nodes = [by_label[lab] for lab in labels]
            for marker in range(len(nodes) - 1):
                word = 0
                for i, node in enumerate(nodes[:-1]):
                    word = (enc.write_start(word, node) if i == marker
                            else enc.write_continue(word, node))
                values = enc.layout.unpack(word)
                out.append((f"{labels[0]:04b}", f"{values['start']:04b}",
                            f"{values['end']:04b}" if values["distance"] else "(victim)",
                            values["distance"]))
        return out

    rows = benchmark(marks)
    table = TextTable(["source", "mark start", "mark end", "distance"])
    for row in rows:
        table.add_row(row)
    report("Figure 3(a) - simple PPM marks at victim 1110", table.render())
    # Paper: (0001,0011,3) ... (0110,1110->victim,0) and (0101,0111,2)...
    assert rows[0][1:] == ("0001", "0011", 3)
    assert rows[3][3] == 0
    assert rows[4][1:] == ("0101", "0111", 2)


def test_figure3b_ddpm_mesh_walkthrough(benchmark, report):
    """Vector evolution (1,0),(2,0),(2,-1),(1,-1),(1,0),(1,1),(1,2)."""

    def walkthrough():
        mesh = Mesh((4, 4))
        scheme = DdpmScheme()
        scheme.attach(mesh)
        coords = [(1, 1), (2, 1), (3, 1), (3, 0), (2, 0), (2, 1), (2, 2), (2, 3)]
        path = [mesh.index(c) for c in coords]
        packet = Packet(IPHeader(1, 2), path[0], path[-1])
        scheme.on_inject(packet, path[0])
        seen = []
        for u, v in zip(path[:-1], path[1:]):
            scheme.on_hop(packet, u, v)
            seen.append(scheme.layout.decode(packet.header.identification))
        source = scheme.identify(packet, path[-1])
        return coords, seen, mesh.coord(source)

    coords, seen, source = benchmark(walkthrough)
    table = TextTable(["hop to", "distance vector V"])
    for coord, vector in zip(coords[1:], seen):
        table.add_row([coord, vector])
    report("Figure 3(b) - DDPM vector evolution (1,1) -> (2,3)",
           table.render() + f"\nvictim decodes source = {source}")
    assert seen == [(1, 0), (2, 0), (2, -1), (1, -1), (1, 0), (1, 1), (1, 2)]
    assert source == (1, 1)


def test_figure3c_ddpm_hypercube_walkthrough(benchmark, report):
    """Vector evolution (1,0,0)...(1,1,0); S = D XOR V = (1,1,0)."""

    def walkthrough():
        cube = Hypercube(3)
        scheme = DdpmScheme()
        scheme.attach(cube)
        src = cube.index((1, 1, 0))
        deltas = [(1, 0, 0), (0, 0, 1), (1, 0, 0), (0, 1, 0), (0, 0, 1), (1, 0, 0)]
        packet = Packet(IPHeader(1, 2), src, 0)
        scheme.on_inject(packet, src)
        node, seen = src, []
        for delta in deltas:
            nxt = cube.step(node, delta.index(1), 1)
            scheme.on_hop(packet, node, nxt)
            seen.append(scheme.layout.decode(packet.header.identification))
            node = nxt
        return seen, node, cube.coord(scheme.identify(packet, node))

    seen, final, source = benchmark(walkthrough)
    table = TextTable(["step", "distance vector V"])
    for i, vector in enumerate(seen, 1):
        table.add_row([i, vector])
    report("Figure 3(c) - DDPM on the 3-cube (1,1,0) -> (0,0,0)",
           table.render() + f"\nvictim decodes source = {source}")
    assert seen == [(1, 0, 0), (1, 0, 1), (0, 0, 1), (0, 1, 1), (0, 1, 0), (1, 1, 0)]
    assert final == 0
    assert source == (1, 1, 0)
