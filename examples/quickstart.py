#!/usr/bin/env python
"""Quickstart: identify spoofed DDoS sources in a cluster with DDPM.

Builds an 8x8 torus with fully adaptive routing, compromises three nodes
that flood a victim with spoofed source addresses over innocent background
chatter, and shows the victim identifying every attacker — from the marking
field alone. Because DDPM decodes the exact source of *every* packet, the
victim gets a precise per-source packet count: flooders tower over the
background and fall out of a trivial rate cut.

Run:  python examples/quickstart.py
"""

from repro import Cluster, DdpmScheme, Torus
from repro.routing import FullyAdaptiveRouter


def main() -> None:
    cluster = Cluster(
        Torus((8, 8)),
        FullyAdaptiveRouter(),
        marking=DdpmScheme(),
        seed=2026,
    )
    victim = cluster.default_victim()
    pipeline = cluster.attach_pipeline(victim)

    truth = cluster.launch_ddos(
        victim=victim,
        num_attackers=3,
        attack_rate_per_node=50.0,
        duration=2.0,
        background_rate=5.0,  # innocent chatter everywhere
    )
    cluster.run()

    # DDPM gives exact per-source counts; attackers dominate by volume.
    counts = pipeline.analysis.source_counts
    ranked = sorted(counts.items(), key=lambda kv: -kv[1])
    coord = cluster.topology.coord

    print(f"victim         : node {victim} {coord(victim)}")
    print(f"true attackers : {sorted(truth.attackers)}")
    print(f"{'source':>8} {'coord':>8} {'packets':>8}")
    for node, count in ranked[:6]:
        tag = "  <-- attacker" if node in truth.attackers else ""
        print(f"{node:>8} {str(coord(node)):>8} {count:>8}{tag}")

    # A 10x-the-median volume cut isolates the flooders exactly.
    median = sorted(counts.values())[len(counts) // 2]
    flooders = {node for node, c in counts.items() if c > 10 * median}
    print(f"\nvolume cut (>10x median) : {sorted(flooders)}")
    assert flooders == set(truth.attackers), "identification mismatch!"
    print("exact identification of all attackers from marking field alone.")


if __name__ == "__main__":
    main()
