#!/usr/bin/env python
"""Beyond the paper: hierarchical DDPM on a hybrid cluster network (§6.3).

A 256-host hybrid — an 8x8 mesh backbone of switches with 4 hosts each —
is neither a pure direct network (plain DDPM refuses it) nor a lost cause:
splitting the 16-bit marking field into a host-port slot plus a backbone
distance vector identifies the exact attacking host from a single packet.

Run:  python examples/hybrid_cluster.py
"""

import numpy as np

from repro.errors import MarkingError
from repro.marking import HierarchicalDdpmScheme
from repro.marking.ddpm_layout import DdpmLayout
from repro.network import Fabric
from repro.routing import TableRouter
from repro.routing.selection import RandomPolicy
from repro.topology import ClusterMesh


def main() -> None:
    cluster = ClusterMesh((8, 8), hosts_per_switch=4)
    print(f"hybrid cluster: {cluster.num_hosts} hosts on an 8x8 backbone "
          f"({cluster.num_nodes} nodes total)")

    try:
        DdpmLayout.for_topology(cluster)
    except MarkingError as exc:
        print(f"plain DDPM refuses: {exc}")

    scheme = HierarchicalDdpmScheme()
    fabric = Fabric(cluster, TableRouter(cluster), marking=scheme,
                    selection=RandomPolicy(np.random.default_rng(0)))
    print(f"H-DDPM layout: {scheme.port_bits} port bits + "
          f"{sum(scheme.vector_layout.widths)} vector bits "
          f"= {scheme.layout.used_bits}/16")

    victim = 255
    analysis = scheme.new_victim_analysis(victim)
    fabric.add_delivery_handler(victim, lambda ev: analysis.observe(ev.packet))

    rng = np.random.default_rng(1)
    attackers = sorted(int(a) for a in rng.choice(255, size=4, replace=False))
    for i, attacker in enumerate(attackers * 12):
        fabric.inject(
            fabric.make_packet(attacker, victim,
                               spoofed_src_ip=int(rng.integers(2**32))),
            delay=i * 0.02,
        )
    fabric.run()

    suspects = sorted(analysis.suspects())
    print(f"true attackers : {attackers}")
    print(f"H-DDPM suspects: {suspects}")
    for host in suspects:
        switch = cluster.backbone_index(cluster.switch_of(host))
        coord = cluster.backbone.coord(switch)
        print(f"  host {host} = backbone switch {coord}, "
              f"port {cluster.port_of(host)}")
    assert suspects == attackers
    print("exact host-level identification on a hybrid topology.")


if __name__ == "__main__":
    main()
