#!/usr/bin/env python
"""Reflection/amplification traceback: who the marks actually point at.

Arms a declarative reflection campaign (attackers spoof the victim's
address in small requests to reflector nodes; reflectors answer with
amplified replies) plus benign Poisson background on a 6x6 adaptive
torus, then compares the DDPM suspect set against *both* ground-truth
node sets. The victim only ever receives reply-path traffic, so marks
identify the reflectors — the nodes to block — while the spoofing true
sources stay invisible to marking-based traceback.

Run:  python examples/reflection_attack.py [--seed N] [--amplification K]
"""

import argparse

from repro import Cluster, DdpmScheme, Torus
from repro.attack.scenario import (
    AttackCampaign,
    PoissonBackgroundSpec,
    ReflectionAmplificationSpec,
)
from repro.defense.metrics import score_identification
from repro.routing import FullyAdaptiveRouter


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--amplification", type=int, default=4)
    args = parser.parse_args()

    cluster = Cluster(Torus((6, 6)), FullyAdaptiveRouter(),
                      marking=DdpmScheme(), seed=args.seed)
    victim = cluster.default_victim()
    pipeline = cluster.attach_pipeline(victim)

    campaign = AttackCampaign((
        ReflectionAmplificationSpec(num_attackers=2, num_reflectors=4,
                                    request_rate=25.0,
                                    amplification=args.amplification,
                                    duration=3.0),
        PoissonBackgroundSpec(rate=1.0, duration=3.0),
    ))
    truth = cluster.launch_attacks(campaign, victim=victim)
    cluster.run()

    suspects = pipeline.suspects()
    vs_sources = score_identification(suspects, truth.attackers)
    vs_reflectors = score_identification(suspects, truth.reflectors)

    print(f"victim:        {victim}")
    print(f"true sources:  {sorted(truth.attackers)} (spoofing the victim)")
    print(f"reflectors:    {sorted(truth.reflectors)}")
    print(f"DDPM suspects: {sorted(suspects)}")
    print(f"recall vs true sources: {vs_sources.recall:.2f}   "
          f"recall vs reflectors: {vs_reflectors.recall:.2f}")
    print()
    print("The marks traced the amplified reply path: every reflector is")
    print("identified, the spoofing sources never are — blocking must")
    print("target the reflectors (or trace the request path separately).")


if __name__ == "__main__":
    main()
