#!/usr/bin/env python
"""TFN-style SYN flood inside a mesh cluster: detect, trace back, quarantine.

Scenario (paper §1-§2): a botnet of compromised nodes opens spoofed
half-open TCP connections against one victim until its connection table
saturates and legitimate clients are denied. The victim runs the full
defense pipeline — rate detector, DDPM identification, automatic
quarantine — and service recovers.

Run:  python examples/syn_flood_traceback.py
"""

import numpy as np

from repro.attack.botnet import Botnet
from repro.attack.flows import FlowSpec, schedule_flow
from repro.attack.synflood import SynFloodMonitor
from repro.defense.detection import RateThresholdDetector
from repro.defense.identification import IdentificationPipeline
from repro.defense.metrics import blocking_collateral
from repro.defense.response import QuarantineController
from repro.marking import DdpmScheme
from repro.network import Fabric
from repro.network.packet import PacketKind
from repro.routing import LeastCongestedPolicy, MinimalAdaptiveRouter
from repro.topology import Mesh


def main() -> None:
    rng = np.random.default_rng(7)
    topology = Mesh((8, 8))
    scheme = DdpmScheme()
    fabric = Fabric(topology, MinimalAdaptiveRouter(), marking=scheme)
    fabric.selection = LeastCongestedPolicy(fabric.congestion, rng)
    victim = topology.index((4, 4))

    # Victim-side stack: SYN service model + detector-gated identification
    # + automatic quarantine of confirmed sources.
    monitor = SynFloodMonitor(fabric, victim, capacity=64, timeout=2.0)
    detector = RateThresholdDetector(window=0.5, threshold_rate=60.0)
    # min_share keeps legitimate clients (active during the flood) out of
    # the suspect set: a source must account for >= 5% of analyzed packets.
    pipeline = IdentificationPipeline(
        fabric, victim, scheme.new_victim_analysis(victim, min_share=0.05),
        detector)
    # A longer confirmation streak lets the flood dilute the shares of
    # legitimate clients before any blocking decision is taken.
    controller = QuarantineController(fabric, pipeline, confirmation_packets=40)

    # Legitimate clients: modest SYN rates from four nodes.
    legit_sources = [topology.index(c) for c in [(0, 0), (0, 7), (7, 0), (7, 7)]]
    for src in legit_sources:
        schedule_flow(fabric, FlowSpec(src, victim, rate=4.0, duration=20.0,
                                       kind=PacketKind.SYN), rng)

    # The botnet: six compromised nodes, in-cluster spoofing, SYN flood
    # starting at t = 5.
    botnet = Botnet.recruit(topology, 6, rng, exclude=[victim] + legit_sources)
    botnet.launch(fabric, victim, rate_per_slave=60.0, duration=15.0,
                  rng=rng, start=5.0, start_jitter=0.5, kind=PacketKind.SYN)

    fabric.run()

    print(f"victim                 : node {victim} {topology.coord(victim)}")
    print(f"botnet slaves          : {sorted(botnet.slaves)}")
    print(f"detector alarm at      : {pipeline.alarm_time:.2f}")
    print(f"quarantined            : {sorted(controller.quarantined)}")
    print(f"reaction latency       : {controller.reaction_latency(5.0):.2f}")
    print(f"legit SYN denial rate  : {monitor.legit_denial_rate:.2%}")
    print(f"attack packets blocked : {controller.block_table.packets_blocked}")

    collateral = blocking_collateral(controller.quarantined, botnet.slaves,
                                     topology.nodes())
    print(f"containment            : {collateral['containment_rate']:.0%}, "
          f"collateral {collateral['collateral_rate']:.1%}")


if __name__ == "__main__":
    main()
