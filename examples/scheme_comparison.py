#!/usr/bin/env python
"""The paper's argument in one table: marking scheme x routing algorithm.

Runs the same multi-attacker spoofed flood on a 6x6 mesh under
deterministic (XY), partially adaptive (west-first), and fully adaptive
routing, identifying sources with PPM, DPM, and DDPM. Prints the
precision/recall matrix: DDPM stays exact everywhere; PPM needs stable
routes; DPM is ambiguous even when routes are stable.

Run:  python examples/scheme_comparison.py
"""

from repro.core import (
    ExperimentConfig,
    MarkingSpec,
    RoutingSpec,
    SelectionSpec,
    TopologySpec,
    run_identification_experiment,
)
from repro.util.tables import TextTable


def main() -> None:
    routings = [
        ("xy", SelectionSpec("first")),          # deterministic
        ("west-first", SelectionSpec("random")),  # partially adaptive
        ("fully-adaptive", SelectionSpec("random")),
    ]
    markings = ["ppm-full", "dpm", "ddpm"]

    table = TextTable(
        ["routing", "scheme", "precision", "recall", "suspects", "exact"],
        title="Identification quality, 3 spoofing attackers on a 6x6 mesh",
    )
    for routing, selection in routings:
        for marking in markings:
            config = ExperimentConfig(
                topology=TopologySpec("mesh", (6, 6)),
                routing=RoutingSpec(routing),
                marking=MarkingSpec(marking, probability=0.2),
                selection=selection,
                seed=42,
                num_attackers=3,
                attack_rate_per_node=40.0,
                duration=2.0,
                background_rate=2.0,
            )
            result = run_identification_experiment(config)
            table.add_row([
                routing, marking,
                f"{result.score.precision:.2f}",
                f"{result.score.recall:.2f}",
                len(result.suspects),
                "yes" if result.score.exact else "no",
            ])
    print(table.render())
    print("\nReading: DDPM is exact under every routing algorithm; PPM is")
    print("exact only while routes are stable; DPM's signature table maps")
    print("one signature to several sources even under XY routing.")


if __name__ == "__main__":
    main()
