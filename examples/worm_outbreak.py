#!/usr/bin/env python
"""Second-generation DDoS: a worm epidemic inside a hypercube cluster.

A CodeRed/Nimda-style worm (paper §1) starts from one infected node in a
6-cube (64 nodes) and scans random peers. Every node runs a lightweight
DDPM-based monitor; once a node observes worm traffic it identifies the
infected senders exactly and blocks them at their injection switches —
containment racing propagation.

Run:  python examples/worm_outbreak.py
"""

import numpy as np

from repro.attack.worm import WormOutbreak, analytic_si_curve
from repro.defense.filtering import SourceBlockTable
from repro.marking import DdpmScheme
from repro.network import Fabric
from repro.network.packet import PacketKind
from repro.routing import MinimalAdaptiveRouter, RandomPolicy
from repro.topology import Hypercube


def run(contain: bool, seed: int = 11):
    rng = np.random.default_rng(seed)
    topology = Hypercube(6)
    scheme = DdpmScheme()
    fabric = Fabric(topology, MinimalAdaptiveRouter(), marking=scheme)
    fabric.selection = RandomPolicy(rng)

    worm = WormOutbreak(fabric, seeds=(0,), scan_rate=4.0,
                        rng=np.random.default_rng(seed + 1),
                        infection_probability=0.8, horizon=25.0)

    blocked = SourceBlockTable()
    if contain:
        blocked.install(fabric)

        def monitor(event):
            packet = event.packet
            if packet.kind is PacketKind.WORM:
                # Any node receiving worm traffic traces the sender via DDPM
                # and reports it for blocking — no trust in the source field.
                infected = scheme.identify(packet, event.node)
                blocked.block(infected)

        for node in topology.nodes():
            fabric.add_delivery_handler(node, monitor)

    fabric.run_until(25.0)
    return worm, blocked


def main() -> None:
    unchecked, _ = run(contain=False)
    contained, blocked = run(contain=True)

    n = 64
    beta = unchecked.effective_contact_rate()
    # Sample around the epidemic's own timescale (inflection ~ ln(N)/beta).
    t_star = np.log(n - 1) / beta
    times = np.round(np.linspace(0.25 * t_star, 2.5 * t_star, 6), 2)
    analytic = analytic_si_curve(n, 1, beta, times)

    print(f"{'time':>6} {'analytic SI':>12}")
    for t, a in zip(times, analytic):
        print(f"{t:6.1f} {a:12.1f}")
    print()
    print(f"unchecked outbreak : {unchecked.infected_count}/{n} infected, "
          f"{unchecked.scans_sent} scans sent")
    print(f"with containment   : {contained.infected_count}/{n} infected, "
          f"{len(blocked.blocked)} nodes quarantined, "
          f"{blocked.packets_blocked} scans blocked at source")

    assert contained.infected_count <= unchecked.infected_count


if __name__ == "__main__":
    main()
