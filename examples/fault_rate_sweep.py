#!/usr/bin/env python
"""Identification accuracy vs link-failure rate: the robustness deliverable.

Sweeps the per-link flap probability from 0 to 0.3 on an 8x8 torus under
fully adaptive routing and compares PPM, DPM, and DDPM recall as the
fabric degrades. Faults are seeded-random link flaps (mean downtime 0.5
time units) armed by the declarative fault campaign; the hardened runner
isolates any failing point instead of aborting the sweep.

Expected shape: DDPM's per-hop distance sum survives rerouting, so its
accuracy decays slowest; PPM's sampled path signatures scramble as soon
as reroutes begin; DPM sits in between.

Run:  python examples/fault_rate_sweep.py [--dims 8 8] [--topology torus]
"""

import argparse

from repro.core import (
    ExperimentConfig,
    MarkingSpec,
    RoutingSpec,
    SelectionSpec,
    TopologySpec,
)
from repro.faults import FaultCampaign, RandomLinkFlapSpec
from repro.runner import ParallelRunner, SweepSpec
from repro.util.tables import TextTable

FAULT_RATES = (0.0, 0.05, 0.1, 0.2, 0.3)
MARKINGS = ("ppm-full", "dpm", "ddpm")
SEEDS = (0, 1, 2, 3)


def campaign_for(rate):
    """The sweep knob: every link flaps with probability ``rate``."""
    if rate == 0.0:
        return None
    return FaultCampaign((
        RandomLinkFlapSpec(probability=rate, mean_downtime=0.5),
    ))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--topology", choices=["mesh", "torus"],
                        default="torus")
    parser.add_argument("--dims", type=int, nargs=2, default=[8, 8])
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    base = ExperimentConfig(
        topology=TopologySpec(args.topology, tuple(args.dims)),
        routing=RoutingSpec("fully-adaptive"),
        marking=MarkingSpec("ddpm"),
        selection=SelectionSpec("random"),
        num_attackers=3,
        attack_rate_per_node=40.0,
        background_rate=2.0,
        duration=2.0,
    )
    runner = ParallelRunner(n_jobs=args.jobs, timeout=300.0, retries=1)

    table = TextTable(
        ["fault rate", "scheme", "recall", "precision", "links failed",
         "rerouted"],
        title=(f"Accuracy vs link-failure rate, {args.topology}"
               f"{tuple(args.dims)}, {len(SEEDS)} seeds"),
    )
    for rate in FAULT_RATES:
        spec = SweepSpec.grid(
            base,
            axes={
                "marking": [MarkingSpec(m, probability=0.2) for m in MARKINGS],
                "faults": [campaign_for(rate)],
            },
            seeds=SEEDS,
        )
        report = runner.run_sweep(spec)
        for failure in report.failures:
            print(f"FAILED {failure}")
        for (marking,), group in report.by("marking").items():
            recall = sum(r.score.recall for r in group) / len(group)
            precision = sum(r.score.precision for r in group) / len(group)
            failed = sum(r.extra.get("faults", {}).get("links_failed", 0)
                         for r in group) / len(group)
            rerouted = sum(r.extra.get("faults", {}).get("rerouted", 0)
                           for r in group) / len(group)
            table.add_row([f"{rate:.2f}", marking, f"{recall:.2f}",
                           f"{precision:.2f}", f"{failed:.1f}",
                           f"{rerouted:.1f}"])
    print(table.render())
    print("\nReading: as the flap rate rises, adaptive rerouting keeps")
    print("packets flowing but scrambles path signatures — probabilistic")
    print("schemes (PPM) decay first, while DDPM's telescoping distance")
    print("sum is route-invariant and degrades only with outright packet")
    print("loss.")


if __name__ == "__main__":
    main()
