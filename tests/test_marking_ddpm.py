"""Unit and integration tests for DDPM — the paper's core contribution."""

import numpy as np
import pytest

from repro.errors import IdentificationError, MarkingError
from repro.marking import DdpmScheme
from repro.network import Fabric, FabricConfig
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import (
    DimensionOrderRouter,
    FullyAdaptiveRouter,
    MinimalAdaptiveRouter,
    RandomPolicy,
    ValiantRouter,
    walk_route,
)
from repro.topology import Hypercube, Mesh, Torus


def attached(topology):
    scheme = DdpmScheme()
    scheme.attach(topology)
    return scheme


def identify_along_path(scheme, topology, path):
    """Simulate inject + per-hop marking along an explicit path."""
    packet = Packet(IPHeader(1, 2), path[0], path[-1])
    scheme.on_inject(packet, path[0])
    for u, v in zip(path[:-1], path[1:]):
        scheme.on_hop(packet, u, v)
    return scheme.identify(packet, path[-1])


class TestSwitchSide:
    def test_inject_zeroes_attacker_garbage(self, mesh44):
        scheme = attached(mesh44)
        packet = Packet(IPHeader(1, 2), 5, 15)
        packet.header.identification = 0xFFFF  # attacker preload
        scheme.on_inject(packet, 5)
        assert scheme.layout.decode(packet.header.identification) == (0, 0)

    def test_requires_attach(self):
        scheme = DdpmScheme()
        packet = Packet(IPHeader(1, 2), 0, 1)
        with pytest.raises(MarkingError):
            scheme.on_inject(packet, 0)

    def test_on_hop_accumulates_delta(self, mesh44):
        scheme = attached(mesh44)
        packet = Packet(IPHeader(1, 2), 0, 15)
        scheme.on_inject(packet, 0)
        scheme.on_hop(packet, mesh44.index((0, 0)), mesh44.index((0, 1)))
        assert scheme.layout.decode(packet.header.identification) == (0, 1)
        scheme.on_hop(packet, mesh44.index((0, 1)), mesh44.index((1, 1)))
        assert scheme.layout.decode(packet.header.identification) == (1, 1)

    def test_per_hop_operations_are_simple(self, mesh44, cube4):
        assert attached(mesh44).per_hop_operations()["add"] == 2
        assert attached(cube4).per_hop_operations()["xor"] == 4


class TestSinglePacketIdentification:
    """Figure 4's guarantee: one packet identifies the exact source."""

    @pytest.mark.parametrize("topo_factory", [
        lambda: Mesh((4, 4)), lambda: Torus((4, 4)), lambda: Hypercube(4),
        lambda: Mesh((3, 3, 3)), lambda: Torus((5, 3)),
    ])
    def test_exact_on_deterministic_routes(self, topo_factory):
        topology = topo_factory()
        scheme = attached(topology)
        router = DimensionOrderRouter()
        for src in topology.nodes():
            dst = topology.num_nodes - 1 - src
            if src == dst:
                continue
            path = walk_route(topology, router, src, dst,
                              lambda c, cur: c[0])
            assert identify_along_path(scheme, topology, path) == src

    @pytest.mark.parametrize("topo_factory", [
        lambda: Mesh((5, 5)), lambda: Torus((5, 5)), lambda: Hypercube(5),
    ])
    def test_exact_on_adaptive_routes(self, topo_factory):
        topology = topo_factory()
        scheme = attached(topology)
        rng = np.random.default_rng(7)
        router = MinimalAdaptiveRouter()
        select = RandomPolicy(rng).binder()
        for trial in range(50):
            src, dst = rng.integers(topology.num_nodes, size=2)
            if src == dst:
                continue
            path = walk_route(topology, router, int(src), int(dst), select)
            assert identify_along_path(scheme, topology, path) == src

    def test_exact_on_nonminimal_routes(self):
        topology = Mesh((5, 5))
        scheme = attached(topology)
        rng = np.random.default_rng(3)
        router = FullyAdaptiveRouter(prefer_minimal=False)
        select = RandomPolicy(rng).binder()
        for _ in range(30):
            path = walk_route(topology, router, 2, 22, select,
                              misroute_budget=6)
            assert identify_along_path(scheme, topology, path) == 2

    def test_exact_on_valiant_routes(self):
        topology = Torus((4, 4))
        scheme = attached(topology)
        rng = np.random.default_rng(5)
        router = ValiantRouter(rng)
        for _ in range(30):
            path = walk_route(topology, router, 1, 14,
                              lambda c, cur: c[0], max_hops=100)
            assert identify_along_path(scheme, topology, path) == 1

    def test_torus_wraparound_routes(self):
        topology = Torus((8, 8))
        scheme = attached(topology)
        # Corner to corner via wrap: the accumulated vector crosses zero.
        path = walk_route(topology, DimensionOrderRouter(),
                          topology.index((0, 0)), topology.index((7, 7)),
                          lambda c, cur: c[0])
        assert identify_along_path(scheme, topology, path) == topology.index((0, 0))


class TestVictimAnalysis:
    def test_suspect_set_is_sources_seen(self, mesh44):
        scheme = attached(mesh44)
        analysis = scheme.new_victim_analysis(15)
        for src in (0, 3, 3, 7):
            path = walk_route(mesh44, DimensionOrderRouter(), src, 15,
                              lambda c, cur: c[0])
            packet = Packet(IPHeader(1, 2), src, 15)
            scheme.on_inject(packet, src)
            for u, v in zip(path[:-1], path[1:]):
                scheme.on_hop(packet, u, v)
            analysis.observe(packet)
        assert analysis.suspects() == frozenset({0, 3, 7})
        assert analysis.source_counts[3] == 2
        assert analysis.packets_observed == 4

    def test_corrupt_vector_raises(self, mesh44):
        scheme = attached(mesh44)
        packet = Packet(IPHeader(1, 2), 0, 0)
        # Claim an offset pointing outside the mesh from node 0 = (0, 0).
        packet.header.identification = scheme.layout.encode((1, 1))
        with pytest.raises(IdentificationError):
            scheme.identify(packet, 0)


class TestEndToEndFabric:
    def test_spoofing_is_irrelevant_to_ddpm(self):
        """DDPM never reads the source address: full spoofing, exact ID."""
        topology = Mesh((4, 4))
        scheme = DdpmScheme()
        fab = Fabric(topology, FullyAdaptiveRouter(), marking=scheme,
                     selection=RandomPolicy(np.random.default_rng(0)))
        analysis = scheme.new_victim_analysis(15)
        fab.add_delivery_handler(15, lambda ev: analysis.observe(ev.packet))
        attacker = 5
        for i in range(25):
            p = fab.make_packet(attacker, 15,
                                spoofed_src_ip=int(np.random.default_rng(i).integers(2**32)))
            p.header.identification = 0xABCD  # preloaded garbage too
            fab.inject(p, delay=i * 0.01)
        fab.run()
        assert analysis.suspects() == frozenset({attacker})

    def test_multiple_attackers_all_identified(self):
        topology = Torus((4, 4))
        scheme = DdpmScheme()
        fab = Fabric(topology, MinimalAdaptiveRouter(), marking=scheme,
                     selection=RandomPolicy(np.random.default_rng(1)))
        victim = 0
        analysis = scheme.new_victim_analysis(victim)
        fab.add_delivery_handler(victim, lambda ev: analysis.observe(ev.packet))
        attackers = [3, 9, 14]
        for i, a in enumerate(attackers * 10):
            fab.inject(fab.make_packet(a, victim), delay=i * 0.02)
        fab.run()
        assert analysis.suspects() == frozenset(attackers)
