"""Unit tests for the whole-program symbol table and call graph."""

import ast

from repro.lint.callgraph import (
    MODULE_SCOPE,
    CallGraph,
    extract_file_graph,
    iter_function_scopes,
    walk_in_scope,
)

ENGINE_SRC = (
    "class Engine:\n"
    "    def __init__(self):\n"
    "        self.helper = make_helper()\n"
    "\n"
    "    def run(self):\n"
    "        step(self)\n"
    "\n"
    "def step(engine):\n"
    "    engine.tick()\n"
    "\n"
    "def make_helper():\n"
    "    return object()\n"
)


def graph_of(files):
    """Build a CallGraph from {path: source}."""
    facts = {path: extract_file_graph(path, ast.parse(source))
             for path, source in files.items()}
    return CallGraph.from_facts(facts)


class TestExtraction:
    def test_functions_classes_and_edges(self):
        facts = extract_file_graph("a.py", ast.parse(ENGINE_SRC))
        scopes = {f["scope"] for f in facts["functions"]}
        assert scopes == {"Engine.__init__", "Engine.run", "step",
                          "make_helper"}
        assert facts["classes"] == {"Engine": "Engine.__init__"}
        assert ["Engine.__init__", "make_helper"] in facts["edges"]
        assert ["Engine.run", "step"] in facts["edges"]

    def test_method_entries_carry_class(self):
        facts = extract_file_graph("a.py", ast.parse(ENGINE_SRC))
        by_scope = {f["scope"]: f for f in facts["functions"]}
        assert by_scope["Engine.run"]["cls"] == "Engine"
        assert by_scope["step"]["cls"] is None

    def test_module_scope_edges(self):
        facts = extract_file_graph(
            "a.py", ast.parse("def setup():\n    pass\n\nx = setup()\n"))
        assert [MODULE_SCOPE, "setup"] in facts["edges"]

    def test_facts_round_trip_json_shapes(self):
        import json
        facts = extract_file_graph("a.py", ast.parse(ENGINE_SRC))
        assert json.loads(json.dumps(facts)) == facts


class TestScopeHelpers:
    def test_iter_function_scopes_dotted_names(self):
        source = ("class A:\n"
                  "    def m(self):\n"
                  "        def inner():\n"
                  "            pass\n"
                  "\n"
                  "def free():\n"
                  "    pass\n")
        scopes = [(scope, cls) for scope, _node, cls
                  in iter_function_scopes(ast.parse(source))]
        assert ("A.m", "A") in scopes
        assert ("A.m.inner", "A") in scopes
        assert ("free", None) in scopes

    def test_walk_in_scope_skips_nested_bodies(self):
        source = ("def outer():\n"
                  "    a = 1\n"
                  "    def inner():\n"
                  "        b = 2\n")
        tree = ast.parse(source)
        outer = tree.body[0]
        names = {node.id for node in walk_in_scope(outer)
                 if isinstance(node, ast.Name)}
        assert "a" in names
        assert "b" not in names  # inner's body is its own scope

    def test_walk_in_scope_yields_boundary_markers(self):
        tree = ast.parse("def outer():\n    def inner():\n        pass\n")
        kinds = [type(node).__name__ for node in walk_in_scope(tree.body[0])]
        assert kinds.count("FunctionDef") == 2  # the root and the marker


class TestReachability:
    def test_forward_follows_merged_names(self):
        graph = graph_of({"a.py": ENGINE_SRC})
        reachable = graph.forward_reachable(["a.py::Engine.run"])
        assert "a.py::step" in reachable
        assert "a.py::make_helper" not in reachable

    def test_backward_reachable_finds_callers(self):
        graph = graph_of({"a.py": ENGINE_SRC})
        callers = graph.backward_reachable(["a.py::step"])
        assert "a.py::Engine.run" in callers
        assert "a.py::make_helper" not in callers

    def test_ctor_edge_cross_file(self):
        graph = graph_of({
            "a.py": ENGINE_SRC,
            "b.py": "def build():\n    return Engine()\n",
        })
        with_ctors = graph.forward_reachable(["b.py::build"])
        assert "a.py::Engine.__init__" in with_ctors
        assert "a.py::make_helper" in with_ctors  # through __init__

    def test_follow_ctor_false_excludes_build_time_work(self):
        graph = graph_of({
            "a.py": ENGINE_SRC,
            "b.py": "def build():\n    return Engine()\n",
        })
        hot = graph.forward_reachable(["b.py::build"], follow_ctor=False)
        assert hot == frozenset({"b.py::build"})

    def test_quals_named_merges_across_files(self):
        graph = graph_of({
            "a.py": "def advance():\n    pass\n",
            "b.py": "class E:\n    def advance(self):\n        pass\n",
        })
        assert graph.quals_named("advance") == (
            "a.py::advance", "b.py::E.advance")

    def test_reachability_is_deterministic(self):
        graph = graph_of({"a.py": ENGINE_SRC,
                          "b.py": "def build():\n    return Engine()\n"})
        first = graph.forward_reachable(["b.py::build"])
        again = graph.forward_reachable(["b.py::build"])
        assert first == again
