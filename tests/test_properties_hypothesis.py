"""Property-based tests (hypothesis) for the core invariants.

The paper's correctness argument for DDPM is a telescoping-sum invariant:
for ANY walk, the accumulated offset equals the source-to-destination offset
in the topology's algebra. These tests search for counterexamples across
random topologies, walks, and encoders.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.marking.ddpm_layout import DdpmLayout
from repro.marking.field import SubfieldLayout
from repro.marking.ppm_encoding import gray_label, gray_unlabel
from repro.topology import Hypercube, Mesh, Torus
from repro.topology.coords import coord_to_index, index_to_coord, minimal_signed_residue
from repro.util.bitops import (
    gray_decode,
    gray_encode,
    popcount,
    to_signed,
    to_unsigned,
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def mesh_dims():
    return st.lists(st.integers(2, 6), min_size=1, max_size=3).map(tuple)


def torus_dims():
    return st.lists(st.integers(3, 7), min_size=1, max_size=3).map(tuple)


@st.composite
def topology_and_walk(draw):
    """A random topology plus a random legal walk (possibly non-minimal)."""
    kind = draw(st.sampled_from(["mesh", "torus", "hypercube"]))
    if kind == "mesh":
        topo = Mesh(draw(mesh_dims()))
    elif kind == "torus":
        topo = Torus(draw(torus_dims()))
    else:
        topo = Hypercube(draw(st.integers(2, 6)))
    start = draw(st.integers(0, topo.num_nodes - 1))
    length = draw(st.integers(1, 24))
    walk = [start]
    for _ in range(length):
        neighbors = topo.neighbors(walk[-1])
        walk.append(neighbors[draw(st.integers(0, len(neighbors) - 1))])
    return topo, walk


# ----------------------------------------------------------------------
# Bit-level invariants
# ----------------------------------------------------------------------
class TestBitops:
    @given(st.integers(0, 2**20))
    def test_gray_roundtrip(self, value):
        assert gray_decode(gray_encode(value)) == value

    @given(st.integers(0, 2**20 - 2))
    def test_gray_adjacency(self, value):
        assert popcount(gray_encode(value) ^ gray_encode(value + 1)) == 1

    @given(st.integers(1, 32), st.data())
    def test_twos_complement_roundtrip(self, bits, data):
        low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        value = data.draw(st.integers(low, high))
        assert to_signed(to_unsigned(value, bits), bits) == value


class TestCoords:
    @given(mesh_dims(), st.data())
    def test_index_coord_roundtrip(self, dims, data):
        total = int(np.prod(dims))
        index = data.draw(st.integers(0, total - 1))
        assert coord_to_index(index_to_coord(index, dims), dims) == index

    @given(st.integers(-1000, 1000), st.integers(1, 64))
    def test_minimal_residue_properties(self, delta, k):
        r = minimal_signed_residue(delta, k)
        assert (r - delta) % k == 0
        assert abs(r) <= k // 2


# ----------------------------------------------------------------------
# The DDPM telescoping invariant — the paper's core correctness claim
# ----------------------------------------------------------------------
class TestDdpmInvariant:
    @settings(max_examples=200, deadline=None)
    @given(topology_and_walk())
    def test_any_walk_resolves_to_true_source(self, topo_walk):
        """For EVERY walk (minimal, looping, backtracking), accumulating
        per-hop deltas and resolving at the end node recovers the start."""
        topo, walk = topo_walk
        offset = topo.identity_offset()
        for u, v in zip(walk[:-1], walk[1:]):
            offset = topo.combine_offsets(offset, topo.hop_delta(u, v))
        assert topo.resolve_source(walk[-1], offset) == walk[0]

    @settings(max_examples=100, deadline=None)
    @given(topology_and_walk())
    def test_encoded_walk_survives_the_16bit_field(self, topo_walk):
        """Same invariant, but through the real 16-bit encode/decode at
        every hop — i.e. what the switch actually stores."""
        topo, walk = topo_walk
        layout = DdpmLayout.for_topology(topo)
        word = layout.encode(topo.identity_offset())
        for u, v in zip(walk[:-1], walk[1:]):
            vector = layout.decode(word)
            word = layout.encode(topo.combine_offsets(vector, topo.hop_delta(u, v)))
        assert topo.resolve_source(walk[-1], layout.decode(word)) == walk[0]

    @settings(max_examples=100, deadline=None)
    @given(topology_and_walk())
    def test_distance_vector_consistency(self, topo_walk):
        """distance_vector(src, dst) must itself resolve back to src."""
        topo, walk = topo_walk
        src, dst = walk[0], walk[-1]
        assert topo.resolve_source(dst, topo.distance_vector(src, dst)) == src


# ----------------------------------------------------------------------
# Field packing and labels
# ----------------------------------------------------------------------
class TestFieldRoundtrip:
    @given(st.lists(st.integers(1, 8), min_size=1, max_size=4), st.data())
    def test_subfield_pack_unpack(self, widths, data):
        if sum(widths) > 16:
            widths = widths[:1]
        slots = [(f"s{i}", w, True) for i, w in enumerate(widths)]
        layout = SubfieldLayout(slots)
        values = {}
        for i, w in enumerate(widths):
            low, high = -(1 << (w - 1)), (1 << (w - 1)) - 1
            values[f"s{i}"] = data.draw(st.integers(low, high))
        assert layout.unpack(layout.pack(values)) == values


class TestGrayLabels:
    @settings(max_examples=50, deadline=None)
    @given(mesh_dims(), st.data())
    def test_label_roundtrip(self, dims, data):
        topo = Mesh(dims)
        node = data.draw(st.integers(0, topo.num_nodes - 1))
        assert gray_unlabel(topo, gray_label(topo, node)) == node

    @settings(max_examples=50, deadline=None)
    @given(mesh_dims())
    def test_mesh_edges_flip_one_label_bit(self, dims):
        topo = Mesh(dims)
        for u, v in topo.links.all_links:
            assert popcount(gray_label(topo, u) ^ gray_label(topo, v)) == 1


# ----------------------------------------------------------------------
# Topology metric invariants
# ----------------------------------------------------------------------
class TestTopologyInvariants:
    @settings(max_examples=30, deadline=None)
    @given(topology_and_walk())
    def test_min_hops_triangle_inequality(self, topo_walk):
        topo, walk = topo_walk
        a, b = walk[0], walk[-1]
        mid = walk[len(walk) // 2]
        assert topo.min_hops(a, b) <= topo.min_hops(a, mid) + topo.min_hops(mid, b)

    @settings(max_examples=30, deadline=None)
    @given(topology_and_walk())
    def test_min_hops_symmetric_and_bounded(self, topo_walk):
        topo, walk = topo_walk
        a, b = walk[0], walk[-1]
        assert topo.min_hops(a, b) == topo.min_hops(b, a)
        assert topo.min_hops(a, b) <= topo.diameter()
        assert topo.min_hops(a, b) <= len(walk) - 1  # walk is a witness

    @settings(max_examples=30, deadline=None)
    @given(topology_and_walk())
    def test_neighbor_symmetry(self, topo_walk):
        topo, _ = topo_walk
        for node in list(topo.nodes())[:16]:
            for nb in topo.neighbors(node):
                assert node in topo.neighbors(nb)
