"""Unit tests for declarative experiment configs."""

import numpy as np
import pytest

from repro.core.config import (
    ExperimentConfig,
    MarkingSpec,
    RoutingSpec,
    SelectionSpec,
    TopologySpec,
)
from repro.errors import ConfigurationError
from repro.marking import DdpmScheme, DpmScheme, FragmentPpmScheme, PpmScheme
from repro.marking.authentication import AuthenticatedDdpmScheme
from repro.routing import (
    DimensionOrderRouter,
    FullyAdaptiveRouter,
    MinimalAdaptiveRouter,
    NegativeFirstRouter,
    NorthLastRouter,
    ValiantRouter,
    WestFirstRouter,
)
from repro.topology import Hypercube, Mesh, Torus


class TestTopologySpec:
    def test_builds_each_kind(self):
        assert isinstance(TopologySpec("mesh", (4, 4)).build(), Mesh)
        assert isinstance(TopologySpec("torus", (4, 4)).build(), Torus)
        assert isinstance(TopologySpec("hypercube", (5,)).build(), Hypercube)

    def test_hypercube_dims_arity(self):
        with pytest.raises(ConfigurationError):
            TopologySpec("hypercube", (2, 2)).build()

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            TopologySpec("fat-tree", (4,)).build()


class TestRoutingSpec:
    @pytest.mark.parametrize("name,cls", [
        ("xy", DimensionOrderRouter),
        ("dor", DimensionOrderRouter),
        ("west-first", WestFirstRouter),
        ("north-last", NorthLastRouter),
        ("negative-first", NegativeFirstRouter),
        ("minimal-adaptive", MinimalAdaptiveRouter),
        ("fully-adaptive", FullyAdaptiveRouter),
        ("valiant", ValiantRouter),
    ])
    def test_builds_each(self, name, cls, rng):
        assert isinstance(RoutingSpec(name).build(rng), cls)

    def test_xy_sets_paper_axis_order(self, rng):
        router = RoutingSpec("xy").build(rng)
        assert router.axis_order == (1, 0)

    def test_is_adaptive_flag(self):
        assert not RoutingSpec("xy").is_adaptive
        assert RoutingSpec("fully-adaptive").is_adaptive

    def test_unknown(self, rng):
        with pytest.raises(ConfigurationError):
            RoutingSpec("warp").build(rng)


class TestMarkingSpec:
    @pytest.mark.parametrize("name,cls", [
        ("ddpm", DdpmScheme),
        ("dpm", DpmScheme),
        ("ppm-full", PpmScheme),
        ("ppm-xor", PpmScheme),
        ("ppm-bitdiff", PpmScheme),
        ("ppm-fragment", FragmentPpmScheme),
    ])
    def test_builds_each(self, name, cls, rng):
        assert isinstance(MarkingSpec(name).build(rng), cls)

    def test_none_returns_none(self, rng):
        assert MarkingSpec("none").build(rng) is None

    def test_auth_needs_topology(self, rng):
        with pytest.raises(ConfigurationError):
            MarkingSpec("ddpm-auth").build(rng)
        scheme = MarkingSpec("ddpm-auth").build(rng, Mesh((4, 4)))
        assert isinstance(scheme, AuthenticatedDdpmScheme)

    def test_probability_threaded_to_ppm(self, rng):
        scheme = MarkingSpec("ppm-full", probability=0.11).build(rng)
        assert scheme.probability == 0.11

    def test_unknown(self, rng):
        with pytest.raises(ConfigurationError):
            MarkingSpec("stamp").build(rng)


class TestSelectionSpec:
    def test_least_congested_needs_fabric(self, rng):
        with pytest.raises(ConfigurationError):
            SelectionSpec("least-congested").build(rng)

    def test_unknown(self, rng):
        with pytest.raises(ConfigurationError):
            SelectionSpec("psychic").build(rng)


class TestExperimentConfig:
    def test_fabric_config_threading(self):
        config = ExperimentConfig(
            topology=TopologySpec("mesh", (4, 4)),
            routing=RoutingSpec("xy"),
            marking=MarkingSpec("ddpm"),
            misroute_budget=3, trace_packets=True,
        )
        fc = config.fabric_config()
        assert fc.misroute_budget == 3
        assert fc.trace_packets is True
