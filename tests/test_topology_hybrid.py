"""Unit tests for the hybrid ClusterMesh topology (§6.3)."""

import pytest

from repro.errors import TopologyError
from repro.topology import ClusterMesh
from repro.topology.properties import diameter, is_connected


@pytest.fixture
def cm():
    """3x3 mesh backbone, 4 hosts per switch: 36 hosts + 9 switches."""
    return ClusterMesh((3, 3), hosts_per_switch=4)


class TestShape:
    def test_counts(self, cm):
        assert cm.num_hosts == 36
        assert cm.num_nodes == 45

    def test_host_degree_one(self, cm):
        for host in cm.hosts():
            assert len(cm.neighbors(host)) == 1

    def test_switch_degree(self, cm):
        # Center backbone switch: 4 hosts + 4 backbone links.
        center = cm.num_hosts + 4  # backbone index 4 = (1,1)
        assert len(cm.neighbors(center)) == 8

    def test_connected(self, cm):
        assert is_connected(cm)

    def test_diameter(self, cm):
        # host -> switch -> (backbone diameter 4) -> switch -> host.
        assert diameter(cm) == 6

    def test_torus_backbone(self):
        cm = ClusterMesh((4, 4), hosts_per_switch=2, wraparound=True)
        assert cm.backbone.kind == "torus"
        assert diameter(cm) == 4 + 2

    def test_validation(self):
        with pytest.raises(TopologyError):
            ClusterMesh((3, 3), hosts_per_switch=0)


class TestAccessors:
    def test_switch_host_roundtrip(self, cm):
        for host in cm.hosts():
            switch = cm.switch_of(host)
            assert cm.is_backbone(switch)
            backbone_local = cm.backbone_index(switch)
            assert cm.host_at(backbone_local, cm.port_of(host)) == host

    def test_hosts_of_same_switch_share_it(self, cm):
        assert cm.switch_of(0) == cm.switch_of(3)
        assert cm.switch_of(0) != cm.switch_of(4)

    def test_type_guards(self, cm):
        switch = cm.num_hosts
        with pytest.raises(TopologyError):
            cm.switch_of(switch)
        with pytest.raises(TopologyError):
            cm.port_of(switch)
        with pytest.raises(TopologyError):
            cm.backbone_index(0)
        with pytest.raises(TopologyError):
            cm.host_at(0, 99)

    def test_is_host_is_backbone_partition(self, cm):
        for node in cm.nodes():
            assert cm.is_host(node) != cm.is_backbone(node)


class TestDdpmUnavailableDirectly:
    def test_plain_ddpm_refuses(self, cm):
        from repro.errors import MarkingError
        from repro.marking.ddpm_layout import DdpmLayout

        with pytest.raises(MarkingError):
            DdpmLayout.for_topology(cm)
