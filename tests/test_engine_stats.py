"""Unit tests for statistics collectors."""

import math

import numpy as np
import pytest

from repro.engine.stats import Counter, Histogram, TimeSeries, WelfordAccumulator


class TestCounter:
    def test_incr_and_get(self):
        c = Counter()
        c.incr("x")
        c.incr("x", 4)
        assert c.get("x") == 5
        assert c["x"] == 5

    def test_unknown_is_zero(self):
        assert Counter().get("nothing") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().incr("x", -1)

    def test_as_dict_snapshot(self):
        c = Counter()
        c.incr("a")
        snap = c.as_dict()
        c.incr("a")
        assert snap == {"a": 1}


class TestWelford:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5, 2, size=1000)
        acc = WelfordAccumulator()
        for x in data:
            acc.add(x)
        assert acc.count == 1000
        assert acc.mean == pytest.approx(np.mean(data))
        assert acc.variance == pytest.approx(np.var(data, ddof=1))
        assert acc.std == pytest.approx(np.std(data, ddof=1))
        assert acc.min == data.min()
        assert acc.max == data.max()

    def test_empty_is_nan(self):
        acc = WelfordAccumulator()
        assert math.isnan(acc.mean)
        assert math.isnan(acc.variance)

    def test_single_sample(self):
        acc = WelfordAccumulator()
        acc.add(3.0)
        assert acc.mean == 3.0
        assert math.isnan(acc.variance)

    def test_merge_equals_combined_stream(self):
        rng = np.random.default_rng(1)
        a_data, b_data = rng.normal(size=100), rng.normal(size=57)
        a, b, whole = WelfordAccumulator(), WelfordAccumulator(), WelfordAccumulator()
        for x in a_data:
            a.add(x)
            whole.add(x)
        for x in b_data:
            b.add(x)
            whole.add(x)
        merged = a.merge(b)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.variance == pytest.approx(whole.variance)

    def test_merge_with_empty(self):
        a = WelfordAccumulator()
        a.add(1.0)
        merged = a.merge(WelfordAccumulator())
        assert merged.count == 1
        assert merged.mean == 1.0


class TestHistogram:
    def test_counts_and_mean(self):
        h = Histogram()
        for v in (1, 2, 2, 3):
            h.add(v)
        assert h.counts() == {1: 1, 2: 2, 3: 1}
        assert h.mean() == 2.0
        assert h.max() == 3

    def test_percentiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.add(v)
        assert h.percentile(0.5) == 50
        assert h.percentile(1.0) == 100
        assert h.percentile(0.01) == 1

    def test_empty_guards(self):
        h = Histogram()
        assert math.isnan(h.mean())
        with pytest.raises(ValueError):
            h.percentile(0.5)
        with pytest.raises(ValueError):
            h.max()

    def test_percentile_bounds_checked(self):
        h = Histogram()
        h.add(1)
        with pytest.raises(ValueError):
            h.percentile(1.5)


class TestTimeSeries:
    def test_arrays(self):
        ts = TimeSeries()
        ts.add(0.0, 1.0)
        ts.add(1.0, 2.0)
        times, values = ts.arrays()
        assert list(times) == [0.0, 1.0]
        assert list(values) == [1.0, 2.0]
        assert len(ts) == 2

    def test_non_monotone_rejected(self):
        ts = TimeSeries()
        ts.add(1.0, 0.0)
        with pytest.raises(ValueError):
            ts.add(0.5, 0.0)

    def test_rate_in_window(self):
        ts = TimeSeries()
        for t in range(10):
            ts.add(float(t), 1.0)
        assert ts.rate_in_window(0.0, 5.0) == pytest.approx(1.0)

    def test_empty_window_rejected(self):
        ts = TimeSeries()
        with pytest.raises(ValueError):
            ts.rate_in_window(1.0, 1.0)
