"""Columnar mark-stream: ring mechanics, pool lifecycle, batch equivalence.

The contract under test (markstream module docstring): processing a delivery
stream through batched sinks — for ANY flush schedule — leaves bit-identical
defense state to the per-packet handler path: same suspect sets, same
``first_suspect_time``, same detector internals, same analyzed/total packet
counters. That makes the columnar layer a pure performance change.
"""

import numpy as np
import pytest

from repro.defense.detection import CusumDetector, RateThresholdDetector
from repro.defense.identification import IdentificationPipeline
from repro.defense.metrics import feed_packets_batched
from repro.engine.profile import EventProfiler
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.marking import DdpmScheme
from repro.network import Fabric
from repro.network.ip import IPHeader
from repro.network.markstream import DeliveryRing, MarkBatch
from repro.network.packet import Packet, PacketPool
from repro.routing import MinimalAdaptiveRouter, RandomPolicy
from repro.topology import Mesh


def make_packets(n, src=1, dst=2, t0=0.0, dt=0.1):
    out = []
    for i in range(n):
        p = Packet(IPHeader(src, dst, ttl=32, total_length=84), src, dst)
        p.header.identification = i % 7
        p.delivered_at = t0 + i * dt
        out.append(p)
    return out


class TestMarkBatch:
    def test_from_packets_columns_mirror_rows(self):
        packets = make_packets(5)
        batch = MarkBatch.from_packets(2, packets)
        assert len(batch) == 5
        assert batch.node == 2
        np.testing.assert_array_equal(batch.words, [0, 1, 2, 3, 4])
        np.testing.assert_allclose(batch.times, [0.0, 0.1, 0.2, 0.3, 0.4])
        assert batch.packets == packets

    def test_explicit_times_shape_checked(self):
        packets = make_packets(3)
        with pytest.raises(ConfigurationError):
            MarkBatch.from_packets(0, packets, times=[1.0, 2.0])

    def test_compress_keeps_masked_rows_in_order(self):
        batch = MarkBatch.from_packets(0, make_packets(6))
        mask = np.array([False, True, False, True, True, False])
        kept = batch.compress(mask)
        assert len(kept) == 3
        np.testing.assert_array_equal(kept.words, [1, 3, 4])
        assert [p.packet_id for p in kept.packets] == \
            [batch.packets[i].packet_id for i in (1, 3, 4)]

    def test_tail_is_the_remainder(self):
        batch = MarkBatch.from_packets(0, make_packets(4))
        rest = batch.tail(3)
        assert len(rest) == 1
        assert rest.packets[0] is batch.packets[3]
        assert batch.tail(4).packets == [] and len(batch.tail(4)) == 0


class TestDeliveryRing:
    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            DeliveryRing(0, 0)

    def test_auto_flush_at_capacity_and_manual_flush(self):
        seen = []
        ring = DeliveryRing(0, capacity=4)
        ring.add_consumer(lambda b: seen.append(list(b.words)))
        packets = make_packets(6)
        for p in packets:
            ring.append(p, p.delivered_at)
        assert ring.flushes == 1 and ring.pending == 2
        assert ring.flush() == 2
        assert ring.flush() == 0  # empty flush is a no-op
        assert ring.flushes == 2 and ring.rows_flushed == 6
        assert [len(s) for s in seen] == [4, 2]
        assert [w for s in seen for w in s] == [0, 1, 2, 3, 4, 5]

    def test_reentrant_flush_from_consumer_is_safe(self):
        ring = DeliveryRing(0, capacity=8)
        calls = []
        ring.add_consumer(lambda b: (calls.append(len(b)), ring.flush()))
        for p in make_packets(3):
            ring.append(p, 0.0)
        ring.flush()
        assert calls == [3]

    def test_pool_release_after_flush(self):
        pool = PacketPool()
        ring = DeliveryRing(0, capacity=8, pool=pool)
        packets = make_packets(3)
        for p in packets:
            ring.append(p, 0.0)
        ring.flush()
        assert pool.released == 3 and len(pool) == 3
        # Recycled shells come back out of acquire with fresh ids.
        header = IPHeader(1, 2, ttl=32, total_length=84)
        reused = pool.acquire(header, 1, 2)
        assert reused in packets
        assert reused.hops == 0 and reused.delivered_at is None
        assert pool.reused == 1

    def test_profiler_counts_flushes(self):
        profiler = EventProfiler()
        ring = DeliveryRing(0, capacity=8, profiler=profiler)
        ring.add_consumer(lambda b: None)
        for p in make_packets(5):
            ring.append(p, 0.0)
        ring.flush()
        stats = profiler.flush_stats()["delivery-ring"]
        assert stats["flushes"] == 1 and stats["rows"] == 5
        assert "flush@delivery-ring" in profiler.as_dict()


class TestPacketPool:
    def test_acquire_resets_all_mutable_state(self):
        pool = PacketPool()
        p = pool.acquire(IPHeader(1, 2, ttl=32, total_length=84), 1, 2)
        p.hops = 9
        p.route_state.misroutes = 3
        p.route_state.scratch["x"] = 1
        p.delivered_at = 4.2
        p.trace = [1, 2]
        pool.release(p)
        q = pool.acquire(IPHeader(5, 6, ttl=32, total_length=84), 5, 6,
                         misroute_budget=2)
        assert q is p
        assert q.hops == 0 and q.delivered_at is None and q.trace is None
        assert q.route_state.misroutes == 0 and q.route_state.scratch == {}
        assert q.route_state.destination == 6
        assert q.route_state.misroute_budget == 2
        assert q.true_source == 5

    def test_max_size_caps_the_freelist(self):
        pool = PacketPool(max_size=1)
        a = pool.acquire(IPHeader(1, 2, ttl=32, total_length=84), 1, 2)
        b = pool.acquire(IPHeader(1, 2, ttl=32, total_length=84), 1, 2)
        pool.release(a)
        pool.release(b)
        assert len(pool) == 1
        assert pool.stats()["allocated"] == 2


def build_fabric(seed=0, pool=None):
    scheme = DdpmScheme()
    fab = Fabric(Mesh((4, 4)), MinimalAdaptiveRouter(), marking=scheme,
                 selection=RandomPolicy(np.random.default_rng(seed)),
                 pool=pool)
    return fab, scheme


def run_scenario(fab, victim=15):
    """Quiet phase from node 1, flood from node 9 — same in every mode."""
    for i in range(6):
        fab.inject(fab.make_packet(1, victim), delay=i * 0.5)
    for i in range(200):
        fab.inject(fab.make_packet(9, victim), delay=10.0 + i * 0.005)
    fab.run()


class TestPipelineBatchEquivalence:
    """Batched pipelines reproduce the per-packet pipeline bit for bit."""

    @pytest.mark.parametrize("capacity", [1, 3, 64, 4096])
    def test_detector_gated_timeline_identical(self, capacity):
        fab_ref, scheme_ref = build_fabric()
        ref = IdentificationPipeline(
            fab_ref, 15, scheme_ref.new_victim_analysis(15),
            RateThresholdDetector(window=1.0, threshold_rate=20.0))
        run_scenario(fab_ref)

        fab_b, scheme_b = build_fabric()
        batched = IdentificationPipeline(
            fab_b, 15, scheme_b.new_victim_analysis(15),
            RateThresholdDetector(window=1.0, threshold_rate=20.0),
            batch=True, batch_capacity=capacity)
        run_scenario(fab_b)

        assert batched.timeline() == ref.timeline()
        assert batched.suspects() == ref.suspects() == frozenset({9})
        assert batched.first_suspect_time == ref.first_suspect_time
        assert batched.alarm_time == ref.alarm_time

    def test_cusum_detector_identical(self):
        fab_ref, scheme_ref = build_fabric()
        ref = IdentificationPipeline(
            fab_ref, 15, scheme_ref.new_victim_analysis(15),
            CusumDetector(window=0.5, drift=5.0, threshold=20.0))
        run_scenario(fab_ref)

        fab_b, scheme_b = build_fabric()
        batched = IdentificationPipeline(
            fab_b, 15, scheme_b.new_victim_analysis(15),
            CusumDetector(window=0.5, drift=5.0, threshold=20.0),
            batch=True, batch_capacity=37)
        run_scenario(fab_b)

        assert batched.timeline() == ref.timeline()
        assert batched.detector.statistic == ref.detector.statistic
        assert batched.detector._bucket_start == ref.detector._bucket_start

    def test_no_detector_batch_mode(self):
        fab_ref, scheme_ref = build_fabric()
        ref = IdentificationPipeline(fab_ref, 15,
                                     scheme_ref.new_victim_analysis(15))
        run_scenario(fab_ref)

        fab_b, scheme_b = build_fabric()
        batched = IdentificationPipeline(fab_b, 15,
                                         scheme_b.new_victim_analysis(15),
                                         batch=True, batch_capacity=16)
        run_scenario(fab_b)
        assert batched.timeline() == ref.timeline()
        assert batched.suspects() == ref.suspects()

    def test_detector_sees_post_alarm_deliveries(self):
        """Regression: the batched path must feed the detector EVERY
        delivery — including rows after the alarm — or its sliding window
        (and any later de-alarm decision) diverges from the per-packet path.
        """
        fab_ref, scheme_ref = build_fabric()
        ref = IdentificationPipeline(
            fab_ref, 15, scheme_ref.new_victim_analysis(15),
            RateThresholdDetector(window=1.0, threshold_rate=20.0))
        run_scenario(fab_ref)

        fab_b, scheme_b = build_fabric()
        batched = IdentificationPipeline(
            fab_b, 15, scheme_b.new_victim_analysis(15),
            RateThresholdDetector(window=1.0, threshold_rate=20.0),
            batch=True, batch_capacity=50)
        run_scenario(fab_b)

        assert batched.detector.packets_seen == batched.total_deliveries
        assert batched.detector.packets_seen == ref.detector.packets_seen
        assert list(batched.detector._times) == list(ref.detector._times)
        assert batched.detector.under_attack == ref.detector.under_attack

    def test_mid_run_accessors_flush_the_ring(self):
        fab, scheme = build_fabric()
        pipeline = IdentificationPipeline(fab, 15,
                                          scheme.new_victim_analysis(15),
                                          batch=True, batch_capacity=4096)
        for i in range(10):
            fab.inject(fab.make_packet(3, 15), delay=i * 0.1)
        fab.sim.run_until(5.0)  # bypass Fabric.run_until's own flush
        assert pipeline._ring.pending > 0
        assert pipeline.suspects() == frozenset({3})
        assert pipeline._ring.pending == 0


class TestPooledFabricEquivalence:
    def test_pooled_run_matches_unpooled_results(self):
        fab_ref, scheme_ref = build_fabric()
        ref = IdentificationPipeline(fab_ref, 15,
                                     scheme_ref.new_victim_analysis(15),
                                     batch=True)
        run_scenario(fab_ref)

        pool = PacketPool(max_size=256)
        fab_p, scheme_p = build_fabric(pool=pool)
        pooled = IdentificationPipeline(fab_p, 15,
                                        scheme_p.new_victim_analysis(15),
                                        batch=True)
        run_scenario(fab_p)

        assert pooled.timeline() == ref.timeline()
        assert pooled.suspects() == ref.suspects()
        assert fab_p.n_delivered == fab_ref.n_delivered
        assert fab_p.sim.events_executed == fab_ref.sim.events_executed
        stats = pool.stats()
        assert stats["released"] > 0

    def test_lazy_injection_recycles_shells(self):
        """When packets are made as the clock advances (the open-loop traffic
        pattern), delivered shells are reacquired instead of reallocated."""
        pool = PacketPool()
        fab, _ = build_fabric(pool=pool)

        def send(src, dst):
            fab.inject(fab.make_packet(src, dst))

        for i in range(50):
            # Test-only closure: lazy acquisition is the point here.
            fab.sim.schedule_call(i * 1.0, send, i % 4, 15)  # repro-lint: disable=H1
        fab.run()
        stats = pool.stats()
        assert stats["reused"] > 0
        assert stats["allocated"] + stats["reused"] == 50
        assert stats["allocated"] < 50  # strictly fewer real allocations

    def test_unobserved_deliveries_release_to_pool(self):
        pool = PacketPool()
        fab, _ = build_fabric(pool=pool)
        fab.inject(fab.make_packet(0, 5))
        fab.run()
        assert pool.released == 1

    def test_drops_release_to_pool_instead_of_logging(self):
        pool = PacketPool()
        fab, _ = build_fabric(pool=pool)
        packet = fab.make_packet(0, 15)
        fab.drop(packet, 0, "test_reason")
        assert fab.dropped_packets == []
        assert pool.released == 1
        assert fab.counters.as_dict()["dropped_test_reason"] == 1


class TestFeedPacketsBatched:
    def test_matches_per_packet_feed(self):
        scheme = DdpmScheme()
        scheme.attach(Mesh((4, 4)))
        fab, fab_scheme = build_fabric()
        delivered = []
        fab.add_delivery_handler(15, lambda ev: delivered.append(ev.packet))
        run_scenario(fab)

        ref = fab_scheme.new_victim_analysis(15)
        for p in delivered:
            ref.observe(p)
        batched = fab_scheme.new_victim_analysis(15)
        assert feed_packets_batched(batched, delivered, chunk_size=33) \
            == len(delivered)
        assert batched.suspects() == ref.suspects()
        assert batched.packets_observed == ref.packets_observed
        assert batched.source_counts == ref.source_counts

    def test_chunk_size_validated(self):
        scheme = DdpmScheme()
        scheme.attach(Mesh((4, 4)))
        with pytest.raises(ConfigurationError):
            feed_packets_batched(scheme.new_victim_analysis(0), [], chunk_size=0)


class TestDetectorBatchFallbacks:
    def test_rate_threshold_unsorted_times_fall_back(self):
        """Synthetic out-of-order replays take the exact per-row loop."""
        packets = make_packets(8)
        times = [0.0, 0.5, 0.3, 0.9, 1.1, 1.0, 2.0, 2.1]
        ref = RateThresholdDetector(window=1.0, threshold_rate=3.0)
        from repro.network.nic import DeliveredPacket
        for p, t in zip(packets, times):
            ref.observe(DeliveredPacket(p, 0, t))
        vec = RateThresholdDetector(window=1.0, threshold_rate=3.0)
        mask = vec.observe_batch(MarkBatch.from_packets(0, packets, times=times))
        assert vec.packets_seen == ref.packets_seen
        assert list(vec._times) == list(ref._times)
        assert vec.alarm_time == ref.alarm_time
        assert bool(mask[-1]) == ref.under_attack

    def test_rate_threshold_batch_start_before_tail_falls_back(self):
        from repro.network.nic import DeliveredPacket
        ref = RateThresholdDetector(window=1.0, threshold_rate=3.0)
        vec = RateThresholdDetector(window=1.0, threshold_rate=3.0)
        first = make_packets(3, t0=1.0, dt=0.1)
        for p in first:
            ref.observe(DeliveredPacket(p, 0, p.delivered_at))
        vec.observe_batch(MarkBatch.from_packets(0, first))
        # Second batch starts EARLIER than the retained window tail.
        second = make_packets(3, t0=0.5, dt=0.1)
        for p in second:
            ref.observe(DeliveredPacket(p, 0, p.delivered_at))
        vec.observe_batch(MarkBatch.from_packets(0, second))
        assert list(vec._times) == list(ref._times)
        assert vec.packets_seen == ref.packets_seen

    def test_cusum_unsorted_times_fall_back(self):
        from repro.network.nic import DeliveredPacket
        packets = make_packets(6)
        times = [0.0, 1.2, 0.9, 2.0, 3.5, 3.4]
        ref = CusumDetector(window=0.5, drift=1.0, threshold=2.0)
        for p, t in zip(packets, times):
            ref.observe(DeliveredPacket(p, 0, t))
        vec = CusumDetector(window=0.5, drift=1.0, threshold=2.0)
        vec.observe_batch(MarkBatch.from_packets(0, packets, times=times))
        assert vec.statistic == ref.statistic
        assert vec._bucket_start == ref._bucket_start
        assert vec._bucket_count == ref._bucket_count
        assert vec.alarm_time == ref.alarm_time
