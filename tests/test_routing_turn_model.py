"""Unit tests for turn-model routing (west-first, north-last, negative-first)."""

import numpy as np
import pytest

from repro.errors import RoutingError, UnroutablePacketError
from repro.routing import (
    DimensionOrderRouter,
    NegativeFirstRouter,
    NorthLastRouter,
    WestFirstRouter,
    walk_route,
)
from repro.routing.selection import RandomPolicy
from repro.topology import Hypercube, Mesh

from tests.conftest import first_candidate


def build_figure2b_mesh():
    """4x4 mesh with the east links of S1 (2,0) and S2 (0,0) failed."""
    mesh = Mesh((4, 4))
    s1, s2, d = mesh.index((2, 0)), mesh.index((0, 0)), mesh.index((1, 2))
    mesh.fail_link(s1, mesh.index((2, 1)))
    mesh.fail_link(s2, mesh.index((0, 1)))
    return mesh, s1, s2, d


class TestWestFirst:
    def test_routes_figure2b_pattern(self, rng):
        # Paper Figure 2(b): XY fails, west-first succeeds by moving
        # north/south first, then east.
        mesh, s1, s2, d = build_figure2b_mesh()
        wf = WestFirstRouter()
        for src in (s1, s2):
            path = walk_route(mesh, wf, src, d, RandomPolicy(rng).binder())
            assert path[-1] == d

    def test_xy_fails_same_pattern(self):
        mesh, s1, _, d = build_figure2b_mesh()
        with pytest.raises(UnroutablePacketError):
            walk_route(mesh, DimensionOrderRouter(axis_order=(1, 0)), s1, d,
                       first_candidate)

    def test_west_leg_is_deterministic(self, mesh44):
        # While the destination is west, the only candidate is the west hop.
        wf = WestFirstRouter()
        from repro.routing.base import RouteState

        state = RouteState(mesh44.index((0, 0)))
        options = wf.candidates(mesh44, mesh44.index((3, 3)), state)
        assert options == (mesh44.index((3, 2)),)

    def test_never_proposes_west_after_start(self, mesh44, rng):
        # From (0,0) to (3,3) the destination is east: no west hop may ever
        # be proposed.
        wf = WestFirstRouter()
        from repro.routing.base import RouteState

        state = RouteState(mesh44.index((3, 3)))
        for node in mesh44.nodes():
            for cand in wf.candidates(mesh44, node, state):
                assert mesh44.coord(cand)[1] >= mesh44.coord(node)[1]

    def test_minimal_paths(self, mesh44, rng):
        wf = WestFirstRouter()
        select = RandomPolicy(rng).binder()
        for src, dst in [(0, 15), (15, 0), (3, 12), (12, 3)]:
            path = walk_route(mesh44, wf, src, dst, select)
            assert len(path) - 1 == mesh44.min_hops(src, dst)

    def test_figure2c_forced_final_west_turn_fails(self):
        """Paper Figure 2(c): when every route must turn west at the node
        east of D, west-first cannot deliver."""
        mesh = Mesh((4, 4))
        d = mesh.index((1, 2))
        # Isolate D except via its east neighbor (1,3).
        mesh.fail_link(d, mesh.index((0, 2)))
        mesh.fail_link(d, mesh.index((2, 2)))
        mesh.fail_link(d, mesh.index((1, 1)))
        src = mesh.index((2, 0))
        with pytest.raises((UnroutablePacketError, Exception)):
            walk_route(mesh, WestFirstRouter(), src, d, first_candidate)

    def test_requires_2d_mesh(self, cube3):
        with pytest.raises(RoutingError):
            WestFirstRouter().validate(cube3)

    def test_nonminimal_variant_misroutes_around_block(self, rng):
        # Fully blocked profitable hops, non-minimal west-first escapes
        # south/north/east within budget.
        mesh = Mesh((4, 4))
        src, dst = mesh.index((1, 0)), mesh.index((1, 3))
        mesh.fail_link(src, mesh.index((1, 1)))  # east hop dead
        wf = WestFirstRouter(minimal=False)
        path = walk_route(mesh, wf, src, dst, RandomPolicy(rng).binder(),
                          misroute_budget=6)
        assert path[-1] == dst


class TestNorthLast:
    def test_routes_simple_pairs(self, mesh44, rng):
        nl = NorthLastRouter()
        select = RandomPolicy(rng).binder()
        for src, dst in [(0, 15), (15, 0), (12, 3)]:
            path = walk_route(mesh44, nl, src, dst, select)
            assert len(path) - 1 == mesh44.min_hops(src, dst)

    def test_north_moves_only_when_nothing_else_profits(self, mesh44):
        from repro.routing.base import RouteState

        nl = NorthLastRouter()
        # Destination north-east: east must be offered, north must not.
        state = RouteState(mesh44.index((0, 3)))
        options = nl.candidates(mesh44, mesh44.index((2, 1)), state)
        assert options == (mesh44.index((2, 2)),)

    def test_final_leg_is_pure_north(self, mesh44):
        from repro.routing.base import RouteState

        nl = NorthLastRouter()
        state = RouteState(mesh44.index((0, 2)))
        options = nl.candidates(mesh44, mesh44.index((2, 2)), state)
        assert options == (mesh44.index((1, 2)),)

    def test_requires_2d_mesh(self):
        with pytest.raises(RoutingError):
            NorthLastRouter().validate(Mesh((2, 2, 2)))


class TestNegativeFirst:
    def test_all_negative_moves_first(self, mesh44):
        from repro.routing.base import RouteState

        nf = NegativeFirstRouter()
        # Destination requires -row and +col: only the negative hop offered.
        state = RouteState(mesh44.index((0, 3)))
        options = nf.candidates(mesh44, mesh44.index((2, 1)), state)
        assert options == (mesh44.index((1, 1)),)

    def test_works_in_3d(self, rng):
        mesh = Mesh((3, 3, 3))
        nf = NegativeFirstRouter()
        select = RandomPolicy(rng).binder()
        src, dst = mesh.index((2, 0, 2)), mesh.index((0, 2, 0))
        path = walk_route(mesh, nf, src, dst, select)
        assert len(path) - 1 == mesh.min_hops(src, dst)

    def test_minimal_on_random_pairs(self, mesh66, rng):
        nf = NegativeFirstRouter()
        select = RandomPolicy(rng).binder()
        for _ in range(30):
            src, dst = rng.integers(36, size=2)
            if src == dst:
                continue
            path = walk_route(mesh66, nf, int(src), int(dst), select)
            assert len(path) - 1 == mesh66.min_hops(int(src), int(dst))

    def test_requires_mesh(self, torus44):
        with pytest.raises(RoutingError):
            NegativeFirstRouter().validate(torus44)
