"""Unit tests for repro.util.tables."""

import pytest

from repro.util.tables import TextTable


class TestTextTable:
    def test_renders_header_and_rows(self):
        table = TextTable(["A", "B"])
        table.add_row([1, "xy"])
        out = table.render()
        lines = out.splitlines()
        assert lines[0].startswith("A")
        assert "-+-" in lines[1]
        assert "xy" in lines[2]

    def test_title_appears_first(self):
        table = TextTable(["A"], title="Table 3")
        table.add_row(["v"])
        assert table.render().splitlines()[0] == "Table 3"

    def test_columns_align(self):
        table = TextTable(["name", "n"])
        table.add_row(["very-long-name", 1])
        table.add_row(["x", 22])
        lines = table.render().splitlines()
        # Column separator positions match across all rows.
        positions = [line.index("|") for line in lines if "|" in line]
        assert len(set(positions)) == 1

    def test_arity_mismatch_rejected(self):
        table = TextTable(["A", "B"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_str_equals_render(self):
        table = TextTable(["A"])
        table.add_row(["x"])
        assert str(table) == table.render()
