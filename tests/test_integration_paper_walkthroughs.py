"""Integration tests pinning the paper's worked examples end to end.

Each test reproduces a concrete number or sequence printed in the paper:
Figure 1's metrics, Figure 2's routing outcomes, Figure 3's marking values,
and the §5 walkthroughs, all through the public API.
"""

import numpy as np
import pytest

from repro.errors import UnroutablePacketError
from repro.marking import DdpmScheme, FullIndexEncoder, PpmScheme, gray_label
from repro.network import Fabric, FabricConfig
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import (
    DimensionOrderRouter,
    FullyAdaptiveRouter,
    RandomPolicy,
    WestFirstRouter,
    walk_route,
)
from repro.topology import Hypercube, Mesh, Torus


class TestFigure1:
    """Topology gallery: 2-D mesh, 4-ary 2-cube, 3-cube."""

    def test_mesh_4x4(self):
        mesh = Mesh((4, 4))
        assert mesh.num_nodes == 16
        assert mesh.degree() == 4       # "the network's degree is four"
        assert mesh.diameter() == 6     # "...and its diameter six"

    def test_4ary_2cube(self):
        torus = Torus((4, 4))
        assert torus.degree() == 4      # 2n with n = 2
        assert torus.diameter() == 4    # k/2 per dimension

    def test_3cube(self):
        cube = Hypercube(3)
        assert cube.degree() == 3
        assert cube.diameter() == 3


class TestFigure2:
    """Routing algorithms under the fault patterns of Figure 2."""

    def setup_method(self):
        self.mesh = Mesh((4, 4))
        self.s1 = self.mesh.index((2, 0))
        self.s2 = self.mesh.index((0, 0))
        self.d = self.mesh.index((1, 2))

    def test_a_xy_routes_fault_free(self):
        xy = DimensionOrderRouter(axis_order=(1, 0))
        p1 = walk_route(self.mesh, xy, self.s1, self.d, lambda c, cur: c[0])
        p2 = walk_route(self.mesh, xy, self.s2, self.d, lambda c, cur: c[0])
        # "packets from S1 arrive at D by moving along the row then the column"
        assert [self.mesh.coord(n) for n in p1] == [(2, 0), (2, 1), (2, 2), (1, 2)]
        assert [self.mesh.coord(n) for n in p2] == [(0, 0), (0, 1), (0, 2), (1, 2)]

    def test_b_west_first_survives_east_faults(self):
        self.mesh.fail_link(self.s1, self.mesh.index((2, 1)))
        self.mesh.fail_link(self.s2, self.mesh.index((0, 1)))
        xy = DimensionOrderRouter(axis_order=(1, 0))
        with pytest.raises(UnroutablePacketError):
            walk_route(self.mesh, xy, self.s1, self.d, lambda c, cur: c[0])
        wf = WestFirstRouter()
        rng = np.random.default_rng(0)
        for src in (self.s1, self.s2):
            path = walk_route(self.mesh, wf, src, self.d,
                              RandomPolicy(rng).binder())
            assert path[-1] == self.d

    def test_c_only_fully_adaptive_survives_isolation(self):
        # D reachable only via its east neighbor: the final turn is west.
        for neighbor in ((0, 2), (2, 2), (1, 1)):
            self.mesh.fail_link(self.d, self.mesh.index(neighbor))
        rng = np.random.default_rng(1)
        with pytest.raises(Exception):
            walk_route(self.mesh, WestFirstRouter(), self.s1, self.d,
                       RandomPolicy(rng).binder())
        path = walk_route(self.mesh, FullyAdaptiveRouter(), self.s1, self.d,
                          RandomPolicy(rng).binder(), misroute_budget=10)
        assert path[-1] == self.d
        assert path[-2] == self.mesh.index((1, 3))  # approached from the east


class TestFigure3a:
    """Simple PPM marks on the 4x4 mesh with Gray-coded labels."""

    PATH_1 = [0b0001, 0b0011, 0b0010, 0b0110, 0b1110]
    PATH_2 = [0b0101, 0b0111, 0b0110, 0b1110]

    def _nodes(self, mesh, labels):
        by_label = {gray_label(mesh, n): n for n in mesh.nodes()}
        return [by_label[lab] for lab in labels]

    def test_path1_marks(self):
        """Victim 1110 receives (0001,0011,3), (0011,0010,2), (0010,0110,1),
        (0110,1110,0) from source 0001."""
        mesh = Mesh((4, 4))
        enc = FullIndexEncoder()
        enc.attach(mesh)
        nodes = self._nodes(mesh, self.PATH_1)
        victim = nodes[-1]
        expected = [
            (0b0001, 0b0011, 3), (0b0011, 0b0010, 2),
            (0b0010, 0b0110, 1), (0b0110, 0b1110, 0),
        ]
        # Force each forwarding switch in turn to be the marker.
        for marker_index, (start_lab, end_lab, dist) in enumerate(expected):
            word = 0
            for i, node in enumerate(nodes[:-1]):
                if i == marker_index:
                    word = enc.write_start(word, node)
                else:
                    word = enc.write_continue(word, node)
            values = enc.layout.unpack(word)
            assert values["start"] == start_lab
            assert values["distance"] == dist
            if dist > 0:
                assert values["end"] == end_lab
            else:
                # End is implicit: the victim completes it as itself.
                (mark,) = enc.candidate_edges(word, victim)
                assert mark.end is None and mark.start == nodes[marker_index]

    def test_path2_marks(self):
        """From 0101: (0101,0111,2), (0111,0110,1), (0110,1110,0)."""
        mesh = Mesh((4, 4))
        enc = FullIndexEncoder()
        enc.attach(mesh)
        nodes = self._nodes(mesh, self.PATH_2)
        expected = [(0b0101, 0b0111, 2), (0b0111, 0b0110, 1), (0b0110, 0b1110, 0)]
        for marker_index, (start_lab, end_lab, dist) in enumerate(expected):
            word = 0
            for i, node in enumerate(nodes[:-1]):
                if i == marker_index:
                    word = enc.write_start(word, node)
                else:
                    word = enc.write_continue(word, node)
            values = enc.layout.unpack(word)
            assert values["start"] == start_lab
            assert values["distance"] == dist


class TestFigure3bAnd3c:
    """DDPM distance-vector walkthroughs (§5) through the real scheme."""

    def test_mesh_walkthrough(self):
        """(1,1) -> (2,3): vector ends at (1,2), victim decodes (1,1)."""
        mesh = Mesh((4, 4))
        scheme = DdpmScheme()
        scheme.attach(mesh)
        path_coords = [(1, 1), (2, 1), (3, 1), (3, 0), (2, 0), (2, 1), (2, 2), (2, 3)]
        path = [mesh.index(c) for c in path_coords]
        packet = Packet(IPHeader(1, 2), path[0], path[-1])
        scheme.on_inject(packet, path[0])
        seen = []
        for u, v in zip(path[:-1], path[1:]):
            scheme.on_hop(packet, u, v)
            seen.append(scheme.layout.decode(packet.header.identification))
        assert seen == [(1, 0), (2, 0), (2, -1), (1, -1), (1, 0), (1, 1), (1, 2)]
        assert mesh.coord(scheme.identify(packet, path[-1])) == (1, 1)

    def test_hypercube_walkthrough(self):
        """(1,1,0) -> (0,0,0): vector ends (1,1,0); S = D XOR V."""
        cube = Hypercube(3)
        scheme = DdpmScheme()
        scheme.attach(cube)
        src = cube.index((1, 1, 0))
        # Hop axes reproducing the paper's vector sequence.
        deltas = [(1, 0, 0), (0, 0, 1), (1, 0, 0), (0, 1, 0), (0, 0, 1), (1, 0, 0)]
        expected = [(1, 0, 0), (1, 0, 1), (0, 0, 1), (0, 1, 1), (0, 1, 0), (1, 1, 0)]
        packet = Packet(IPHeader(1, 2), src, 0)
        scheme.on_inject(packet, src)
        node = src
        seen = []
        for delta in deltas:
            nxt = cube.step(node, delta.index(1), 1)
            scheme.on_hop(packet, node, nxt)
            seen.append(scheme.layout.decode(packet.header.identification))
            node = nxt
        assert node == cube.index((0, 0, 0))
        assert seen == expected
        assert scheme.identify(packet, node) == src


class TestSection5Claims:
    def test_one_packet_suffices(self):
        """'The victim needs only one packet to identify the source.'"""
        mesh = Mesh((8, 8))
        scheme = DdpmScheme()
        fab = Fabric(mesh, FullyAdaptiveRouter(), marking=scheme,
                     selection=RandomPolicy(np.random.default_rng(0)))
        analysis = scheme.new_victim_analysis(63)
        fab.add_delivery_handler(63, lambda ev: analysis.observe(ev.packet))
        fab.inject(fab.make_packet(20, 63, spoofed_src_ip=0x01010101))
        fab.run()
        assert analysis.packets_observed == 1
        assert analysis.suspects() == frozenset({20})

    def test_robust_to_routing_algorithm(self):
        """'Our technique is robust to routing algorithms.'"""
        from repro.routing import MinimalAdaptiveRouter, ValiantRouter

        mesh = Torus((4, 4))
        rng = np.random.default_rng(0)
        routers = [DimensionOrderRouter(), MinimalAdaptiveRouter(),
                   FullyAdaptiveRouter(),
                   ValiantRouter(np.random.default_rng(1))]
        for router in routers:
            scheme = DdpmScheme()
            scheme.attach(mesh)
            path = walk_route(mesh, router, 5, 10,
                              RandomPolicy(rng).binder(), misroute_budget=6,
                              max_hops=200)
            packet = Packet(IPHeader(1, 2), 5, 10)
            scheme.on_inject(packet, 5)
            for u, v in zip(path[:-1], path[1:]):
                scheme.on_hop(packet, u, v)
            assert scheme.identify(packet, 10) == 5, router.name
