"""Documentation-coverage meta-test.

Deliverable requirement: doc comments on every public item. This test walks
the installed ``repro`` package and asserts every public module, class, and
function/method carries a docstring — so documentation rot fails CI instead
of accumulating.
"""

import importlib
import inspect
import pkgutil

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield importlib.import_module(info.name)


def _is_local(obj, module):
    return getattr(obj, "__module__", None) == module.__name__


class TestDocstrings:
    def test_every_public_module_documented(self):
        missing = [m.__name__ for m in _public_modules() if not inspect.getdoc(m)]
        assert missing == []

    def test_every_public_class_documented(self):
        missing = []
        for module in _public_modules():
            for name, cls in inspect.getmembers(module, inspect.isclass):
                if name.startswith("_") or not _is_local(cls, module):
                    continue
                if not inspect.getdoc(cls):
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_every_public_function_documented(self):
        missing = []
        for module in _public_modules():
            for name, fn in inspect.getmembers(module, inspect.isfunction):
                if name.startswith("_") or not _is_local(fn, module):
                    continue
                if not inspect.getdoc(fn):
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_every_public_method_documented(self):
        missing = []
        for module in _public_modules():
            for cls_name, cls in inspect.getmembers(module, inspect.isclass):
                if cls_name.startswith("_") or not _is_local(cls, module):
                    continue
                for name, member in inspect.getmembers(cls):
                    if name.startswith("_"):
                        continue
                    if not (inspect.isfunction(member) or isinstance(
                            member, property)):
                        continue
                    owner = getattr(member, "__module__", None) if not isinstance(
                        member, property) else getattr(member.fget, "__module__", None)
                    if owner != module.__name__:
                        continue  # inherited from elsewhere
                    doc = inspect.getdoc(member) or (
                        isinstance(member, property)
                        and inspect.getdoc(member.fget))
                    if not doc:
                        missing.append(f"{module.__name__}.{cls_name}.{name}")
        assert sorted(set(missing)) == []
