"""Unit tests for the Packet model."""

from repro.network.ip import IPHeader
from repro.network.packet import Packet, PacketKind


class TestPacket:
    def _make(self, **kw):
        return Packet(IPHeader(1, 2), true_source=3, destination_node=7, **kw)

    def test_ids_unique(self):
        a, b = self._make(), self._make()
        assert a.packet_id != b.packet_id

    def test_route_state_initialized(self):
        p = self._make(misroute_budget=5)
        assert p.route_state.destination == 7
        assert p.route_state.misroute_budget == 5
        assert p.route_state.last_node is None

    def test_latency_requires_both_timestamps(self):
        p = self._make()
        assert p.latency is None
        p.injected_at = 1.0
        assert p.latency is None
        p.delivered_at = 3.5
        assert p.latency == 2.5

    def test_size_mirrors_header(self):
        p = Packet(IPHeader(1, 2, total_length=84), 0, 1)
        assert p.size_bytes == 84

    def test_trace_disabled_by_default(self):
        p = self._make()
        p.record_hop(4)  # no-op without start_trace
        assert p.trace is None

    def test_trace_records_path(self):
        p = self._make()
        p.start_trace(3)
        p.record_hop(4)
        p.record_hop(7)
        assert p.trace == [3, 4, 7]

    def test_kind_default_and_custom(self):
        assert self._make().kind is PacketKind.DATA
        assert self._make(kind=PacketKind.SYN).kind is PacketKind.SYN
