"""Unit tests for the runtime SimSanitizer and its engine wiring."""

import pickle

import numpy as np
import pytest

from repro.engine.sanitize import (
    GuardedGenerator,
    GuardedRngRegistry,
    SanitizerReport,
    SimSanitizer,
)
from repro.engine.simulator import Simulator
from repro.errors import SanitizerError, SimulationError
from repro.network.packet import PacketPool
from repro.network.ip import IPHeader


def exec_as(module_name, source):
    """Execute ``source`` as if it were the module ``module_name``."""
    namespace = {"__name__": module_name}
    exec(compile(source, f"<{module_name}>", "exec"), namespace)
    return namespace


OWNER_SRC = "def touch(stream):\n    stream.random()\n"
THIEF_SRC = "def siphon(stream):\n    return stream.random()\n"


def _noop():
    pass


class TestGuardedRng:
    def test_guarded_draws_match_bare_draws(self):
        bare = Simulator(seed=11, sanitize=False)
        guarded = Simulator(seed=11, sanitize=True)
        for name in ("traffic:0", "marking:tree", "arb:3"):
            a = [int(bare.rng.stream(name).integers(1 << 20))
                 for _ in range(8)]
            b = [int(guarded.rng.stream(name).integers(1 << 20))
                 for _ in range(8)]
            assert a == b

    def test_stream_returns_cached_guard(self):
        sim = Simulator(sanitize=True)
        assert sim.rng.stream("x") is sim.rng.stream("x")
        assert isinstance(sim.rng.stream("x"), GuardedGenerator)

    def test_spawn_returns_guarded_child(self):
        sim = Simulator(seed=5, sanitize=True)
        child = sim.rng.spawn("sub")
        assert isinstance(child, GuardedRngRegistry)
        bare_child = Simulator(seed=5, sanitize=False).rng.spawn("sub")
        assert child.seed == bare_child.seed

    def test_reset_with_seed_keeps_guarding(self):
        sim = Simulator(seed=1, sanitize=True)
        sim.reset(seed=2)
        assert isinstance(sim.rng, GuardedRngRegistry)
        assert sim.rng.seed == 2

    def test_non_draw_attributes_pass_through(self):
        sim = Simulator(sanitize=True)
        stream = sim.rng.stream("x")
        assert stream.bit_generator is not None


class TestCrossUse:
    def test_cross_package_draw_raises(self):
        sim = Simulator(sanitize=True)
        stream = sim.rng.stream("marking:tree")
        owner = exec_as("repro.marking.fake_owner", OWNER_SRC)
        thief = exec_as("repro.attack.fake_thief", THIEF_SRC)
        owner["touch"](stream)
        with pytest.raises(SanitizerError) as excinfo:
            thief["siphon"](stream)
        report = excinfo.value.report
        assert report.kind == "rng-cross-use"
        assert report.subject == "marking:tree"
        assert "repro.marking" in report.detail
        assert "repro.attack" in report.detail

    def test_same_package_draws_are_fine(self):
        sim = Simulator(sanitize=True)
        stream = sim.rng.stream("marking:tree")
        owner = exec_as("repro.marking.fake_owner", OWNER_SRC)
        owner["touch"](stream)
        owner["touch"](stream)

    def test_untracked_draws_never_claim_ownership(self):
        # Draws straight from test code (no repro frame) are unattributed:
        # harness code may inspect any stream freely.
        sim = Simulator(sanitize=True)
        stream = sim.rng.stream("traffic:7")
        stream.random()
        owner = exec_as("repro.attack.fake_owner", OWNER_SRC)
        owner["touch"](stream)  # first tracked draw claims it

    def test_draw_counts_accumulate(self):
        sim = Simulator(sanitize=True)
        sim.rng.stream("a").random()
        sim.rng.stream("a").random()
        assert sim.sanitizer.draw_counts["a"] == 2


class TestPoolDiscipline:
    def _packet(self, pool):
        return pool.acquire(IPHeader(src=1, dst=2), 1, 2)

    def test_double_release_raises(self):
        pool = PacketPool(max_size=8)
        pool.sanitizer = SimSanitizer()
        packet = self._packet(pool)
        pool.release(packet)
        with pytest.raises(SanitizerError) as excinfo:
            pool.release(packet)
        assert excinfo.value.report.kind == "pool-double-release"

    def test_release_acquire_cycle_is_clean(self):
        pool = PacketPool(max_size=8)
        sanitizer = SimSanitizer()
        pool.sanitizer = sanitizer
        packet = self._packet(pool)
        pool.release(packet)
        again = self._packet(pool)
        pool.release(again)
        accounting = sanitizer.pool_accounting()
        assert accounting == {"releases": 2, "acquires": 1, "parked": 1}


class _FakeChannel:
    def __init__(self, credits, capacity, queue=(), busy=False, failed=False):
        self.credits = credits
        self.buffer_capacity = capacity
        self.queue = list(queue)
        self.busy = busy
        self.failed = failed


class TestCreditConservation:
    def test_leaked_credit_raises(self):
        sanitizer = SimSanitizer()
        channels = {(0, 1): _FakeChannel(3, 4)}
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.check_credits(channels)
        report = excinfo.value.report
        assert report.kind == "credit-leak"
        assert report.subject == "0->1"

    def test_busy_failed_and_queued_channels_are_skipped(self):
        sanitizer = SimSanitizer()
        sanitizer.check_credits({
            (0, 1): _FakeChannel(3, 4, busy=True),
            (1, 2): _FakeChannel(3, 4, failed=True),
            (2, 3): _FakeChannel(3, 4, queue=[object()]),
            (3, 4): _FakeChannel(4, 4),
        })


class TestHeapOrdering:
    def test_clean_run_passes_boundary_checks(self):
        sim = Simulator(sanitize=True)
        for delay in (3.0, 1.0, 2.0):
            sim.schedule_call(delay, _noop)
        assert sim.run() == 3.0

    def test_corrupted_heap_raises(self):
        sim = Simulator(sanitize=True)
        for delay in (1.0, 2.0, 3.0, 4.0, 5.0):
            sim.schedule_call(delay, _noop)
        sim.queue._heap.reverse()  # break the heap property in place
        with pytest.raises(SanitizerError) as excinfo:
            sim.run()
        assert excinfo.value.report.kind == "heap-order"

    def test_entry_before_clock_raises(self):
        sim = Simulator(sanitize=True)
        sim.schedule_call(1.0, _noop)
        sim.now = 5.0  # clock jumped past a pending event
        with pytest.raises(SanitizerError) as excinfo:
            sim.run()
        assert excinfo.value.report.kind == "heap-order"

    def test_unsanitized_sim_still_raises_simulation_error(self):
        sim = Simulator(sanitize=False)
        sim.schedule_call(1.0, _noop)
        sim.now = 5.0
        with pytest.raises(SimulationError):
            sim.run()


class TestEnablement:
    def test_env_variable_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Simulator().sanitizer is not None

    def test_env_zero_and_empty_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert Simulator().sanitizer is None
        monkeypatch.setenv("REPRO_SANITIZE", "")
        assert Simulator().sanitizer is None

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Simulator(sanitize=False).sanitizer is None
        monkeypatch.delenv("REPRO_SANITIZE")
        assert Simulator(sanitize=True).sanitizer is not None

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert Simulator().sanitizer is None


class TestReports:
    def test_error_pickles_with_report(self):
        report = SanitizerReport(kind="credit-leak", detail="one short",
                                 subject="0->1", sim_time=2.5,
                                 events_executed=17)
        err = SanitizerError(report)
        clone = pickle.loads(pickle.dumps(err))
        assert clone.report == report
        assert "credit-leak" in str(clone)

    def test_report_to_dict_round_trips_json(self):
        import json
        report = SanitizerReport(kind="rng-cross-use", detail="d",
                                 subject="s", sim_time=1.0,
                                 events_executed=2)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["kind"] == "rng-cross-use"
        assert data["events_executed"] == 2

    def test_report_str_mentions_time_and_events(self):
        report = SanitizerReport(kind="heap-order", detail="broken",
                                 sim_time=1.25, events_executed=9)
        text = str(report)
        assert "1.25" in text and "9 events" in text
