"""FaultCampaign / spec value semantics: validation, round-trips, registry."""

import json

import pytest

from repro import registry
from repro.core.config import (
    ExperimentConfig,
    MarkingSpec,
    RoutingSpec,
    TopologySpec,
)
from repro.errors import ConfigurationError, FaultError
from repro.faults import (
    FaultCampaign,
    FaultSpec,
    LinkFlapSpec,
    NicStallSpec,
    PacketFaultSpec,
    RandomLinkFlapSpec,
    SwitchCrashSpec,
)

ALL_SPECS = (
    LinkFlapSpec(u=0, v=1, fail_at=1.0, restore_at=2.0),
    LinkFlapSpec(u=3, v=2, fail_at=0.5),
    SwitchCrashSpec(node=5, crash_at=1.0, restart_at=4.0),
    NicStallSpec(node=2, start_at=0.25, end_at=1.25),
    PacketFaultSpec(mode="drop", probability=0.1),
    PacketFaultSpec(mode="duplicate", probability=0.05, start_at=1.0,
                    end_at=2.0, node=7),
    PacketFaultSpec(mode="bitflip", probability=0.2),
    RandomLinkFlapSpec(probability=0.1, mean_downtime=0.5),
    RandomLinkFlapSpec(probability=0.3, start_at=0.5, end_at=2.0),
)


class TestSpecValidation:
    def test_link_flap_rejects_self_link(self):
        with pytest.raises(FaultError):
            LinkFlapSpec(u=1, v=1, fail_at=0.0)

    def test_link_flap_rejects_restore_before_fail(self):
        with pytest.raises(FaultError):
            LinkFlapSpec(u=0, v=1, fail_at=2.0, restore_at=1.0)

    def test_negative_times_rejected(self):
        with pytest.raises(FaultError):
            LinkFlapSpec(u=0, v=1, fail_at=-1.0)
        with pytest.raises(FaultError):
            SwitchCrashSpec(node=0, crash_at=-0.5)

    def test_nic_stall_needs_positive_window(self):
        with pytest.raises(FaultError):
            NicStallSpec(node=0, start_at=1.0, end_at=1.0)

    def test_packet_fault_rejects_unknown_mode(self):
        with pytest.raises(FaultError):
            PacketFaultSpec(mode="scramble", probability=0.1)

    def test_probability_bounds(self):
        with pytest.raises(FaultError):
            PacketFaultSpec(mode="drop", probability=1.5)
        with pytest.raises(FaultError):
            RandomLinkFlapSpec(probability=-0.1)

    def test_random_flap_rejects_zero_downtime(self):
        with pytest.raises(FaultError):
            RandomLinkFlapSpec(probability=0.1, mean_downtime=0.0)

    def test_campaign_rejects_non_specs(self):
        with pytest.raises(FaultError):
            FaultCampaign(("not a spec",))


class TestRoundTrips:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.kind)
    def test_spec_roundtrip(self, spec):
        data = spec.to_dict()
        assert data["kind"] == spec.kind
        rebuilt = type(spec).from_dict(data)
        assert rebuilt == spec

    def test_campaign_roundtrip_via_registry(self):
        campaign = FaultCampaign(ALL_SPECS)
        data = campaign.to_dict()
        # the dict form is pure JSON
        rebuilt = FaultCampaign.from_dict(json.loads(json.dumps(data)))
        assert rebuilt == campaign
        assert len(rebuilt) == len(ALL_SPECS)

    def test_campaign_rejects_kindless_entry(self):
        with pytest.raises(FaultError):
            FaultCampaign.from_dict({"specs": [{"u": 0, "v": 1, "fail_at": 0.0}]})

    def test_campaign_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            FaultCampaign.from_dict({"specs": [{"kind": "gremlin"}]})

    def test_spec_rejects_unknown_keys(self):
        with pytest.raises(FaultError):
            LinkFlapSpec.from_dict({"kind": "link-flap", "u": 0, "v": 1,
                                    "fail_at": 0.0, "severity": "high"})

    def test_spec_rejects_wrong_kind(self):
        with pytest.raises(FaultError):
            NicStallSpec.from_dict({"kind": "link-flap", "node": 0,
                                    "start_at": 0.0, "end_at": 1.0})


class TestRegistry:
    def test_all_builtin_kinds_registered(self):
        for kind in ("link-flap", "switch-crash", "nic-stall", "packet",
                     "random-link-flap"):
            assert kind in registry.FAULTS

    def test_custom_kind_plugs_in(self):
        from dataclasses import dataclass
        from typing import ClassVar

        @dataclass(frozen=True)
        class NoopSpec(FaultSpec):
            kind: ClassVar[str] = "noop"

            def arm(self, injector):
                pass

            def to_dict(self):
                return {"kind": "noop"}

            @classmethod
            def from_dict(cls, data):
                return cls()

        registry.FAULTS.register("noop", NoopSpec.from_dict)
        try:
            campaign = FaultCampaign.from_dict({"specs": [{"kind": "noop"}]})
            assert isinstance(campaign.specs[0], NoopSpec)
        finally:
            registry.FAULTS.unregister("noop")


class TestConfigIntegration:
    def _config(self, faults=None):
        return ExperimentConfig(
            topology=TopologySpec("mesh", (4, 4)),
            routing=RoutingSpec("fully-adaptive"),
            marking=MarkingSpec("ddpm"),
            faults=faults,
        )

    def test_config_roundtrip_with_campaign(self):
        campaign = FaultCampaign(ALL_SPECS)
        config = self._config(campaign)
        rebuilt = ExperimentConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.faults == campaign

    def test_faultless_canonical_json_is_unchanged(self):
        # The "faults" key must be absent when no campaign is set, so
        # pre-existing cache keys (hashes of canonical_json) stay valid.
        config = self._config()
        assert "faults" not in config.to_dict()
        assert "faults" not in config.canonical_json()

    def test_campaign_changes_cache_key(self):
        plain = self._config()
        faulty = self._config(FaultCampaign((
            LinkFlapSpec(u=0, v=1, fail_at=1.0),
        )))
        assert plain.canonical_json() != faulty.canonical_json()
