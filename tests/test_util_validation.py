"""Unit tests for repro.util.validation."""

import pytest

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_in_range,
    check_non_negative_int,
    check_positive_int,
    check_probability,
    check_sequence_of_positive_ints,
)


class TestPositiveInt:
    def test_accepts(self):
        assert check_positive_int(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "3", True, None])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive_int(bad, "x")


class TestNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    @pytest.mark.parametrize("bad", [-1, 0.5, False])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_non_negative_int(bad, "x")


class TestProbability:
    @pytest.mark.parametrize("value", [0, 0.5, 1, 1.0])
    def test_accepts(self, value):
        assert check_probability(value, "p") == float(value)

    @pytest.mark.parametrize("bad", [-0.01, 1.01, "half", None])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_probability(bad, "p")


class TestInRange:
    def test_boundaries_inclusive(self):
        assert check_in_range(0, "x", 0, 10) == 0.0
        assert check_in_range(10, "x", 0, 10) == 10.0

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            check_in_range(10.5, "x", 0, 10)


class TestSequence:
    def test_accepts_tuple_and_list(self):
        assert check_sequence_of_positive_ints([4, 4], "dims") == (4, 4)
        assert check_sequence_of_positive_ints((2, 3, 4), "dims") == (2, 3, 4)

    @pytest.mark.parametrize("bad", [[], "44", [4, 0], [4, 2.5], None, [True]])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_sequence_of_positive_ints(bad, "dims")

    def test_error_names_offending_index(self):
        with pytest.raises(ConfigurationError, match=r"dims\[1\]"):
            check_sequence_of_positive_ints([4, -1], "dims")
