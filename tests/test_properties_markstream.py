"""Property tests (hypothesis): ``observe_batch`` ≡ ``observe`` per scheme.

The columnar mark-stream contract (``VictimAnalysis.observe_batch``): for
EVERY registered marking scheme, feeding the same delivered stream through
any mix of per-packet ``observe`` calls and ``observe_batch`` partitions
must leave identical analysis state — suspect set, ``packets_observed``,
``corrupted_packets``, and the scheme-specific accumulators. This holds
under adversarial stream orderings and under fault-campaign-style mark
damage (random 16-bit MF bit-flips and dropped packets, mirroring the
``bitflip``/``drop`` packet fault modes in :mod:`repro.faults`).
"""

from collections import deque

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.ip import IPHeader
from repro.network.markstream import MarkBatch
from repro.network.packet import Packet
from repro.registry import MARKING
from repro.topology import Mesh
from repro.topology.hybrid import ClusterMesh

#: every registered scheme except the no-marking sentinel
SCHEME_NAMES = [name for name in MARKING.names() if name != "none"]

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def topology_for(name):
    # hddpm is defined only on the hybrid host/backbone topology.
    if name == "hddpm":
        return ClusterMesh((2, 2), 2)
    return Mesh((4, 4))


def endpoints_for(name, topology, rng):
    """(sources, victim): hddpm talks host-to-host, flat schemes node-to-node."""
    if name == "hddpm":
        hosts = list(range(topology.num_hosts))
    else:
        hosts = list(topology.nodes())
    victim = hosts[int(rng.integers(0, len(hosts)))]
    sources = [h for h in hosts if h != victim]
    return sources, victim


def shortest_path(topology, src, dst, rng):
    """A shortest src->dst node path with random tie-breaks (BFS tree)."""
    dist = {dst: 0}
    frontier = deque([dst])
    while frontier:
        node = frontier.popleft()
        for nxt in topology.neighbors(node):
            if nxt not in dist:
                dist[nxt] = dist[node] + 1
                frontier.append(nxt)
    path = [src]
    node = src
    while node != dst:
        closer = [n for n in topology.neighbors(node)
                  if dist.get(n, -1) == dist[node] - 1]
        node = closer[int(rng.integers(0, len(closer)))]
        path.append(node)
    return path


def marked_stream(name, seed, n_packets, corrupt_prob):
    """Build a delivered-packet stream exactly as the fabric would mark it."""
    rng = np.random.default_rng(seed)
    topology = topology_for(name)
    scheme = MARKING.create(name, rng, topology, 0.6)
    scheme.attach(topology)
    sources, victim = endpoints_for(name, topology, rng)
    packets = []
    for i in range(n_packets):
        src = sources[int(rng.integers(0, len(sources)))]
        packet = Packet(IPHeader(src, victim, ttl=64, total_length=84),
                        src, victim)
        scheme.on_inject(packet, src)
        path = shortest_path(topology, src, victim, rng)
        for frm, to in zip(path, path[1:]):
            scheme.on_hop(packet, frm, to)
            packet.header.decrement_ttl()
            packet.hops += 1
        if rng.random() < corrupt_prob:
            # fault-campaign "bitflip" mode: one random MF bit, wire-level
            packet.header.identification ^= 1 << int(rng.integers(0, 16))
        if rng.random() < corrupt_prob / 2:
            continue  # fault-campaign "drop" mode: never delivered
        packet.delivered_at = 0.25 * len(packets)
        packets.append(packet)
    return scheme, victim, packets


def state_of(analysis):
    """Comparable snapshot: counters plus scheme-specific accumulators."""
    state = {
        "suspects": analysis.suspects(),
        "packets_observed": analysis.packets_observed,
        "corrupted_packets": analysis.corrupted_packets,
    }
    for attr in ("source_counts", "signature_counts", "mark_counts",
                 "fragments"):
        if hasattr(analysis, attr):
            state[attr] = getattr(analysis, attr)
    return state


stream_params = given(
    name=st.sampled_from(SCHEME_NAMES),
    seed=st.integers(0, 2**16),
    n_packets=st.integers(1, 40),
    corrupt_prob=st.floats(0.0, 0.4, allow_nan=False),
)


class TestBatchEquivalence:
    @SETTINGS
    @stream_params
    def test_arbitrary_partitions_match_per_packet(self, name, seed,
                                                   n_packets, corrupt_prob):
        scheme, victim, packets = marked_stream(name, seed, n_packets,
                                                corrupt_prob)
        rng = np.random.default_rng(seed + 1)

        ref = scheme.new_victim_analysis(victim)
        for packet in packets:
            ref.observe(packet)

        # Same stream, same order, but chopped at random cut points and fed
        # through a mix of observe_batch and per-packet observe calls.
        batched = scheme.new_victim_analysis(victim)
        cuts = sorted(set(int(rng.integers(0, len(packets) + 1))
                          for _ in range(3)))
        bounds = [0] + cuts + [len(packets)]
        for which, (start, stop) in enumerate(zip(bounds, bounds[1:])):
            chunk = packets[start:stop]
            if not chunk:
                continue
            if which % 2:
                for packet in chunk:
                    batched.observe(packet)
            else:
                batched.observe_batch(MarkBatch.from_packets(victim, chunk))

        assert state_of(batched) == state_of(ref)

    @SETTINGS
    @stream_params
    def test_shuffled_stream_same_suspects(self, name, seed, n_packets,
                                           corrupt_prob):
        scheme, victim, packets = marked_stream(name, seed, n_packets,
                                                corrupt_prob)
        rng = np.random.default_rng(seed + 2)

        ref = scheme.new_victim_analysis(victim)
        for packet in packets:
            ref.observe(packet)

        shuffled = list(packets)
        rng.shuffle(shuffled)
        batched = scheme.new_victim_analysis(victim)
        batched.observe_batch(MarkBatch.from_packets(victim, shuffled))

        assert batched.suspects() == ref.suspects()
        assert batched.packets_observed == ref.packets_observed
        assert batched.corrupted_packets == ref.corrupted_packets

    @SETTINGS
    @stream_params
    def test_single_row_batches_match(self, name, seed, n_packets,
                                      corrupt_prob):
        # Degenerate flush schedule: capacity-1 ring, one batch per packet.
        scheme, victim, packets = marked_stream(name, seed, n_packets,
                                                corrupt_prob)
        ref = scheme.new_victim_analysis(victim)
        batched = scheme.new_victim_analysis(victim)
        for packet in packets:
            ref.observe(packet)
            batched.observe_batch(MarkBatch.from_packets(victim, [packet]))
        assert state_of(batched) == state_of(ref)
