"""Unit tests for Valiant randomized routing."""

import numpy as np
import pytest

from repro.routing import DimensionOrderRouter, ValiantRouter, walk_route
from repro.topology import Hypercube, Mesh

from tests.conftest import first_candidate


class TestValiant:
    def test_always_delivers(self, mesh44):
        rng = np.random.default_rng(3)
        router = ValiantRouter(rng)
        for seed_dst in (3, 9, 15):
            path = walk_route(mesh44, router, 0, seed_dst, first_candidate,
                              max_hops=100)
            assert path[-1] == seed_dst

    def test_path_visits_intermediate(self, mesh44):
        rng = np.random.default_rng(1)
        router = ValiantRouter(rng)
        from repro.routing.base import RouteState

        state = RouteState(15)
        # First candidates() call fixes the intermediate.
        router.candidates(mesh44, 0, state)
        intermediate = state.scratch["valiant_intermediate"]
        path = [0]
        current = 0
        for _ in range(100):
            options = router.candidates(mesh44, current, state)
            if not options:
                break
            current = options[0]
            path.append(current)
            if current == 15:
                break
        if intermediate != 15:
            assert intermediate in path

    def test_produces_diverse_paths(self, mesh44):
        rng = np.random.default_rng(0)
        router = ValiantRouter(rng)
        paths = {tuple(walk_route(mesh44, router, 0, 15, first_candidate,
                                  max_hops=100))
                 for _ in range(40)}
        # With a deterministic phase router the path is determined by the
        # intermediate; 40 draws over 16 intermediates must collide but
        # still show substantial diversity.
        assert len(paths) >= 6

    def test_paths_can_be_non_minimal(self, mesh44):
        # Note: corner-to-opposite-corner would be degenerate (every
        # intermediate lies on a minimal path); a same-row pair shows the
        # detour cost of random intermediates.
        rng = np.random.default_rng(0)
        src, dst = mesh44.index((0, 0)), mesh44.index((0, 3))
        router = ValiantRouter(rng)
        lengths = [len(walk_route(mesh44, router, src, dst, first_candidate,
                                  max_hops=100)) - 1
                   for _ in range(40)]
        assert max(lengths) > mesh44.min_hops(src, dst)
        assert min(lengths) >= mesh44.min_hops(src, dst)

    def test_works_on_hypercube(self, cube4):
        rng = np.random.default_rng(2)
        router = ValiantRouter(rng)
        path = walk_route(cube4, router, 0, 15, first_candidate, max_hops=100)
        assert path[-1] == 15

    def test_phase_router_validation_propagates(self, cube3):
        from repro.errors import RoutingError
        from repro.routing.turn_model import WestFirstRouter

        rng = np.random.default_rng(0)
        router = ValiantRouter(rng, phase_router=WestFirstRouter())
        with pytest.raises(RoutingError):
            router.validate(cube3)
