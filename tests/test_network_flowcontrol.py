"""Unit tests for service models (store-and-forward vs virtual cut-through)."""

import pytest

from repro.errors import ConfigurationError
from repro.network.flowcontrol import StoreAndForward, VirtualCutThrough
from repro.network.ip import IPHeader
from repro.network.packet import Packet


def packet_of(total_length):
    return Packet(IPHeader(1, 2, total_length=total_length), 0, 1)


class TestStoreAndForward:
    def test_full_packet_time(self):
        saf = StoreAndForward()
        assert saf.serialization_time(packet_of(100), 50.0) == pytest.approx(2.0)

    def test_scales_with_size(self):
        saf = StoreAndForward()
        small = saf.serialization_time(packet_of(40), 10.0)
        big = saf.serialization_time(packet_of(400), 10.0)
        assert big == pytest.approx(10 * small)

    def test_bandwidth_validated(self):
        with pytest.raises(ConfigurationError):
            StoreAndForward().serialization_time(packet_of(40), 0.0)


class TestVirtualCutThrough:
    def test_per_hop_cost_is_header_only(self):
        vct = VirtualCutThrough()
        t = vct.serialization_time(packet_of(1000), 20.0)
        assert t == pytest.approx(IPHeader.HEADER_BYTES / 20.0)

    def test_per_hop_cost_independent_of_payload(self):
        vct = VirtualCutThrough()
        assert (vct.serialization_time(packet_of(40), 10.0)
                == vct.serialization_time(packet_of(4000), 10.0))

    def test_injection_overhead_covers_payload(self):
        vct = VirtualCutThrough()
        assert vct.injection_overhead(packet_of(120), 10.0) == pytest.approx(10.0)

    def test_injection_overhead_zero_for_header_only(self):
        vct = VirtualCutThrough()
        assert vct.injection_overhead(packet_of(20), 10.0) == 0.0

    def test_vct_beats_saf_per_hop(self):
        p = packet_of(500)
        assert (VirtualCutThrough().serialization_time(p, 10.0)
                < StoreAndForward().serialization_time(p, 10.0))
