"""Unit tests for blocking and filtering actuators."""

import numpy as np
import pytest

from repro.attack.flows import FlowSpec, schedule_flow
from repro.attack.spoofing import InClusterSpoofing
from repro.defense.filtering import IngressFilter, SignatureFilter, SourceBlockTable
from repro.network import Fabric
from repro.routing import DimensionOrderRouter
from repro.topology import Mesh


@pytest.fixture
def fabric():
    return Fabric(Mesh((4, 4)), DimensionOrderRouter())


class TestSourceBlockTable:
    def test_blocked_node_cannot_inject(self, fabric):
        table = SourceBlockTable()
        table.block(3)
        table.install(fabric)
        fabric.inject(fabric.make_packet(3, 15))
        fabric.inject(fabric.make_packet(4, 15))
        fabric.run()
        assert fabric.counters["dropped_filtered_at_source"] == 1
        assert fabric.counters["delivered"] == 1
        assert table.packets_blocked == 1

    def test_unblock(self, fabric):
        table = SourceBlockTable()
        table.block(3)
        table.unblock(3)
        table.install(fabric)
        fabric.inject(fabric.make_packet(3, 15))
        fabric.run()
        assert fabric.counters["delivered"] == 1

    def test_spoofing_does_not_evade_node_blocking(self, fabric):
        # Blocking keys on the injecting NODE, not the spoofed address.
        table = SourceBlockTable()
        table.block(3)
        table.install(fabric)
        fabric.inject(fabric.make_packet(3, 15, spoofed_src_ip=0x01020304))
        fabric.run()
        assert fabric.counters["delivered"] == 0


class TestSignatureFilter:
    def test_blocked_signature_filtered(self, fabric):
        received = []
        filt = SignatureFilter()
        filt.block_signature(0xAAAA)
        fabric.add_delivery_handler(15, filt.guard(lambda ev: received.append(ev)))
        good = fabric.make_packet(0, 15)
        bad = fabric.make_packet(1, 15)
        fabric.marking = None  # keep identifications as set below
        good.header.identification = 0x1111
        bad.header.identification = 0xAAAA
        fabric.inject(good)
        fabric.inject(bad)
        fabric.run()
        assert len(received) == 1
        assert received[0].packet.header.identification == 0x1111

    def test_collateral_accounting(self, fabric):
        attack_ids = set()
        filt = SignatureFilter(is_attack_packet=lambda p: p.packet_id in attack_ids)
        filt.block_signatures([0xAAAA])
        fabric.add_delivery_handler(15, filt.guard(lambda ev: None))
        attacker_pkt = fabric.make_packet(1, 15)
        attacker_pkt.header.identification = 0xAAAA
        attack_ids.add(attacker_pkt.packet_id)
        innocent_pkt = fabric.make_packet(2, 15)
        innocent_pkt.header.identification = 0xAAAA  # same path signature
        fabric.inject(attacker_pkt)
        fabric.inject(innocent_pkt)
        fabric.run()
        assert filt.attack_filtered == 1
        assert filt.legit_filtered == 1


class TestIngressFilter:
    def test_blocks_all_spoofing(self, fabric, rng):
        ingress = IngressFilter(fabric)
        ingress.install()
        spec = FlowSpec(3, 15, rate=50.0, duration=1.0,
                        spoofing=InClusterSpoofing())
        packets = schedule_flow(fabric, spec, rng)
        fabric.inject(fabric.make_packet(4, 15))  # honest
        fabric.run()
        assert ingress.spoofs_blocked == len(packets)
        assert fabric.counters["delivered"] == 1

    def test_honest_traffic_unaffected(self, fabric, rng):
        ingress = IngressFilter(fabric)
        ingress.install()
        spec = FlowSpec(3, 15, rate=20.0, duration=1.0)
        packets = schedule_flow(fabric, spec, rng)
        fabric.run()
        assert ingress.spoofs_blocked == 0
        assert fabric.counters["delivered"] == len(packets)
