"""Unit tests for flow scheduling."""

import numpy as np
import pytest

from repro.attack.flows import FlowSpec, schedule_flow
from repro.attack.spoofing import InClusterSpoofing
from repro.errors import ConfigurationError
from repro.network import Fabric
from repro.network.packet import PacketKind
from repro.routing import DimensionOrderRouter
from repro.topology import Mesh


@pytest.fixture
def fabric():
    return Fabric(Mesh((4, 4)), DimensionOrderRouter())


class TestFlowSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlowSpec(0, 1, rate=0.0)
        with pytest.raises(ConfigurationError):
            FlowSpec(0, 1, rate=1.0, duration=-1)
        with pytest.raises(ConfigurationError):
            FlowSpec(0, 1, rate=1.0, start=-1)


class TestScheduleFlow:
    def test_poisson_count_near_expectation(self, fabric, rng):
        spec = FlowSpec(0, 15, rate=100.0, duration=5.0)
        packets = schedule_flow(fabric, spec, rng)
        assert 400 < len(packets) < 620

    def test_window_respected(self, fabric, rng):
        spec = FlowSpec(0, 15, rate=50.0, start=2.0, duration=1.0)
        schedule_flow(fabric, spec, rng)
        fabric.run()
        # First delivery cannot precede the flow start.
        assert fabric.latency.count > 0

    def test_metadata_applied(self, fabric, rng):
        spec = FlowSpec(0, 15, rate=20.0, duration=1.0, kind=PacketKind.SYN,
                        flow_id=77, payload_bytes=120)
        packets = schedule_flow(fabric, spec, rng)
        for p in packets:
            assert p.kind is PacketKind.SYN
            assert p.flow_id == 77
            assert p.size_bytes == 20 + 120
            assert p.true_source == 0
            assert p.destination_node == 15

    def test_spoofing_strategy_applied(self, fabric, rng):
        spec = FlowSpec(0, 15, rate=50.0, duration=2.0,
                        spoofing=InClusterSpoofing())
        packets = schedule_flow(fabric, spec, rng)
        assert packets
        for p in packets:
            assert p.header.src != fabric.addresses.ip_of(0)
            assert fabric.addresses.contains(p.header.src)

    def test_sequence_numbers_increment(self, fabric, rng):
        spec = FlowSpec(0, 15, rate=50.0, duration=1.0)
        packets = schedule_flow(fabric, spec, rng)
        assert [p.seq for p in packets] == list(range(len(packets)))
