"""Tests for the Burch-Cheswick controlled-flooding baseline (§2)."""

import numpy as np
import pytest

from repro.attack.flows import FlowSpec, schedule_flow
from repro.defense.controlled_flooding import ControlledFloodingTracer, ProbeResult
from repro.errors import ConfigurationError
from repro.network import Fabric
from repro.routing import DimensionOrderRouter, LeastCongestedPolicy, MinimalAdaptiveRouter
from repro.topology import Mesh


def build_attack(router, seed=0, attacker_coord=(2, 0), victim_coord=(2, 2),
                 rate=40.0, selection=None):
    topology = Mesh((5, 5))
    fabric = Fabric(topology, router)
    if selection == "least-congested":
        fabric.selection = LeastCongestedPolicy(fabric.congestion,
                                                np.random.default_rng(seed))
    victim = topology.index(victim_coord)
    attacker = topology.index(attacker_coord)
    rng = np.random.default_rng(seed)
    packets = schedule_flow(fabric, FlowSpec(attacker, victim, rate=rate,
                                             duration=500.0), rng)
    ids = {p.packet_id for p in packets}
    return topology, fabric, victim, attacker, (lambda p: p.packet_id in ids)


class TestProbeResult:
    def test_dip_computation(self):
        assert ProbeResult(1, 40.0, 10.0).dip == pytest.approx(0.75)
        assert ProbeResult(1, 40.0, 50.0).dip == 0.0
        assert ProbeResult(1, 0.0, 0.0).dip == 0.0


class TestTracer:
    def test_finds_path_under_deterministic_routing(self):
        topology, fabric, victim, attacker, is_attack = build_attack(
            DimensionOrderRouter())
        tracer = ControlledFloodingTracer(fabric, victim, is_attack)
        fabric.run_until(2.0)
        path = tracer.trace(max_hops=3)
        assert path[0] == victim
        assert path[-1] == attacker
        # The walk followed the row the attack flows along.
        assert [topology.coord(n) for n in path] == [(2, 2), (2, 1), (2, 0)]

    def test_requires_live_attack(self):
        """'This approach is possible only during ongoing attacks.'"""
        topology, fabric, victim, attacker, is_attack = build_attack(
            DimensionOrderRouter())
        # Kill the attack before tracing by exhausting its window.
        fabric.run_until(600.0)
        tracer = ControlledFloodingTracer(fabric, victim, is_attack)
        path = tracer.trace(max_hops=3)
        assert path == [victim]  # no rate to perturb: immediate stop

    def test_adaptive_routing_defeats_tracing(self):
        """'It cannot find the paths...' — congestion-aware adaptive routing
        steers the attack around the probe, so the dip vanishes."""
        topology, fabric, victim, attacker, is_attack = build_attack(
            MinimalAdaptiveRouter(), selection="least-congested",
            attacker_coord=(0, 0))
        tracer = ControlledFloodingTracer(fabric, victim, is_attack)
        fabric.run_until(2.0)
        path = tracer.trace(max_hops=4)
        # The trace stalls before reaching the attacker.
        assert path[-1] != attacker

    def test_probing_worsens_legit_latency(self):
        """'It can further worsen the situation by flooding more traffic.'"""
        topology, fabric, victim, attacker, is_attack = build_attack(
            DimensionOrderRouter())
        # A legitimate flow crossing the probed region.
        rng = np.random.default_rng(5)
        legit = schedule_flow(fabric, FlowSpec(topology.index((2, 1)),
                                               topology.index((2, 3)),
                                               rate=5.0, duration=500.0), rng)
        tracer = ControlledFloodingTracer(fabric, victim, is_attack)
        fabric.run_until(2.0)
        baseline_latency = fabric.latency.mean
        tracer.trace(max_hops=2)
        during = [p.latency for p in legit
                  if p.latency is not None and p.delivered_at > 2.0]
        assert max(during) > 3 * baseline_latency

    def test_probe_traffic_counted(self):
        topology, fabric, victim, attacker, is_attack = build_attack(
            DimensionOrderRouter())
        tracer = ControlledFloodingTracer(fabric, victim, is_attack)
        fabric.run_until(2.0)
        tracer.probe(topology.index((2, 1)), victim)
        assert tracer.probes_sent > 100  # the probe is itself a flood

    def test_validation(self):
        topology, fabric, victim, _, is_attack = build_attack(
            DimensionOrderRouter())
        with pytest.raises(ConfigurationError):
            ControlledFloodingTracer(fabric, victim, is_attack, window=0)
        with pytest.raises(ConfigurationError):
            ControlledFloodingTracer(fabric, victim, is_attack,
                                     dip_threshold=1.5)
