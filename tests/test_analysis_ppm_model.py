"""Tests for the PPM overhead model, cross-validated against simulation."""

import math

import numpy as np
import pytest

from repro.analysis.ppm_model import (
    expected_packets_bound,
    expected_packets_savage,
    mark_survival_probability,
    optimal_marking_probability,
)
from repro.errors import ConfigurationError
from repro.marking import FullIndexEncoder, PpmScheme
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.topology import Mesh


class TestFormulas:
    def test_survival_probability_shape(self):
        p = 0.1
        probs = [mark_survival_probability(i, p) for i in range(1, 10)]
        assert probs[0] == pytest.approx(p)
        assert all(a > b for a, b in zip(probs, probs[1:]))  # monotone decay

    def test_savage_bound_grows_with_distance(self):
        p = 0.04
        values = [expected_packets_savage(d, p) for d in (5, 15, 30, 62)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_cluster_vs_internet_blowup(self):
        """§4.2: diameter 62 (32x32 mesh) vs Internet ~15 hops."""
        p = 0.04
        internet = expected_packets_savage(15, p)
        cluster = expected_packets_savage(62, p)
        # With Internet-tuned p the cluster diameter costs ~10x more packets;
        # the gap widens exponentially as p shrinks (see benchmark A1).
        assert cluster / internet > 5
        assert (expected_packets_savage(62, 0.01)
                / expected_packets_savage(15, 0.01) > 1.5)

    def test_fragment_bound_exceeds_single(self):
        assert (expected_packets_bound(20, 0.04, k=8)
                > expected_packets_savage(20, 0.04))

    def test_paper_bound_formula(self):
        d, p, k = 10, 0.05, 8
        expected = k * math.log(k * d) / (p * (1 - p) ** (d - 1))
        assert expected_packets_bound(d, p, k) == pytest.approx(expected)

    def test_optimal_probability(self):
        assert optimal_marking_probability(25) == pytest.approx(0.04)
        # p = 1/d maximizes the farthest-mark survival.
        d = 12
        best = mark_survival_probability(d, optimal_marking_probability(d))
        for p in (0.02, 0.05, 0.2, 0.5):
            assert mark_survival_probability(d, p) <= best + 1e-12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mark_survival_probability(0, 0.1)
        with pytest.raises(ConfigurationError):
            expected_packets_savage(5, 0.0)
        with pytest.raises(ConfigurationError):
            expected_packets_bound(5, 0.5, k=0)


class TestModelVsSimulation:
    def test_survival_probability_matches_empirical(self):
        """Simulated farthest-mark arrival rate matches p(1-p)^(d-1)."""
        mesh = Mesh((1, 8))  # line: 0..7, fixed 7-hop path
        scheme = PpmScheme(FullIndexEncoder(), 0.2, np.random.default_rng(0))
        scheme.attach(mesh)
        path = list(range(8))
        d = len(path) - 1  # 7 forwarding switches... hops
        hits = 0
        trials = 4000
        for _ in range(trials):
            packet = Packet(IPHeader(1, 2), 0, 7)
            scheme.on_inject(packet, 0)
            for u, v in zip(path[:-1], path[1:]):
                scheme.on_hop(packet, u, v)
            marks = scheme.encoder.candidate_edges(packet.header.identification, 7)
            if any(m.start == 0 for m in marks):
                hits += 1
        expected = mark_survival_probability(d, 0.2)
        assert hits / trials == pytest.approx(expected, rel=0.15)
