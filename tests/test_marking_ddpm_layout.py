"""Unit tests for DDPM field layouts — the paper's Table 3."""

import pytest

from repro.errors import FieldLayoutError, MarkingError
from repro.marking.ddpm_layout import DdpmLayout
from repro.topology import Hypercube, IrregularTopology, Mesh, Torus


class TestTable3:
    """Exact reproduction of the paper's Table 3."""

    def test_2d_max_is_128x128(self):
        assert DdpmLayout.capacities(2) == (128, 128)
        assert DdpmLayout.max_nodes(2) == 16384

    def test_3d_max_is_8192_nodes(self):
        # "splitting the MF into two five-bits and one six-bits (8192 nodes)"
        assert DdpmLayout.capacities(3) == (16, 16, 32)
        assert DdpmLayout.max_nodes(3) == 8192

    def test_hypercube_max_is_2_to_16(self):
        assert DdpmLayout.max_nodes(16, hypercube=True) == 65536

    def test_signed_width_rule(self):
        # w bits support 2^(w-1) nodes per dimension.
        assert DdpmLayout.signed_width_for(128) == 8
        assert DdpmLayout.signed_width_for(16) == 5
        assert DdpmLayout.signed_width_for(32) == 6

    def test_oversized_hypercube_rejected(self):
        with pytest.raises(FieldLayoutError):
            DdpmLayout.capacities(17, hypercube=True)

    def test_too_many_signed_dims_rejected(self):
        with pytest.raises(FieldLayoutError):
            DdpmLayout.capacities(10)  # 16/10 < 2 bits per signed slot


class TestForTopology:
    def test_mesh_gets_signed_layout(self):
        layout = DdpmLayout.for_topology(Mesh((4, 4)))
        assert layout.signed and not layout.fold_modulo
        assert layout.widths == (3, 3)

    def test_torus_gets_folding_layout(self):
        layout = DdpmLayout.for_topology(Torus((8, 8)))
        assert layout.signed and layout.fold_modulo

    def test_hypercube_gets_bit_layout(self):
        layout = DdpmLayout.for_topology(Hypercube(10))
        assert not layout.signed
        assert layout.widths == (1,) * 10

    def test_oversized_topology_rejected(self):
        with pytest.raises(FieldLayoutError):
            DdpmLayout.for_topology(Mesh((256, 256)))

    def test_max_size_topology_accepted(self):
        layout = DdpmLayout.for_topology(Mesh((128, 128)))
        assert layout.layout.used_bits == 16

    def test_irregular_rejected(self):
        topo = IrregularTopology(3, [(0, 1), (1, 2)])
        with pytest.raises(MarkingError):
            DdpmLayout.for_topology(topo)


class TestEncodeDecode:
    def test_mesh_roundtrip(self):
        layout = DdpmLayout.for_topology(Mesh((8, 8)))
        for vec in [(0, 0), (7, -7), (-3, 5)]:
            assert layout.decode(layout.encode(vec)) == vec

    def test_hypercube_roundtrip(self):
        layout = DdpmLayout.for_topology(Hypercube(6))
        for vec in [(0,) * 6, (1,) * 6, (1, 0, 1, 0, 1, 0)]:
            assert layout.decode(layout.encode(vec)) == vec

    def test_torus_folds_mod_k(self):
        layout = DdpmLayout.for_topology(Torus((8, 8)))
        # +9 ≡ +1 (mod 8); -7 ≡ +1 (mod 8)
        assert layout.decode(layout.encode((9, -7))) == (1, 1)

    def test_torus_fold_never_overflows(self):
        # Even absurd loop counts stay in range after folding.
        layout = DdpmLayout.for_topology(Torus((8, 8)))
        word = layout.encode((8 * 1000 + 3, -8 * 999 - 2))
        assert layout.decode(word) == (3, -2)

    def test_mesh_overflow_raises(self):
        from repro.errors import FieldOverflowError

        layout = DdpmLayout.for_topology(Mesh((8, 8)))
        with pytest.raises(FieldOverflowError):
            layout.encode((99, 0))

    def test_arity_checked(self):
        layout = DdpmLayout.for_topology(Mesh((8, 8)))
        with pytest.raises(MarkingError):
            layout.encode((1,))
