"""Integration tests for the Cluster façade."""

import numpy as np
import pytest

from repro.core import Cluster, ExperimentConfig, MarkingSpec, RoutingSpec, TopologySpec
from repro.errors import ConfigurationError
from repro.marking import DdpmScheme
from repro.routing import FullyAdaptiveRouter
from repro.topology import Mesh, Torus


class TestConstruction:
    def test_direct_construction(self):
        cluster = Cluster(Mesh((4, 4)), FullyAdaptiveRouter(),
                          marking=DdpmScheme(), seed=1)
        assert cluster.default_victim() == 15

    def test_from_config(self):
        config = ExperimentConfig(
            topology=TopologySpec("torus", (4, 4)),
            routing=RoutingSpec("minimal-adaptive"),
            marking=MarkingSpec("ddpm"),
            seed=3,
        )
        cluster = Cluster.from_config(config)
        assert isinstance(cluster.topology, Torus)
        assert cluster.marking is not None

    def test_reproducible_from_seed(self):
        def run(seed):
            cluster = Cluster(Mesh((4, 4)), FullyAdaptiveRouter(),
                              marking=DdpmScheme(), seed=seed)
            victim = cluster.default_victim()
            truth = cluster.launch_ddos(victim=victim, num_attackers=3,
                                        duration=1.0)
            cluster.run()
            return truth.attackers, cluster.fabric.counters.as_dict()

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestDdosWorkflow:
    def test_end_to_end_identification(self):
        cluster = Cluster(Mesh((4, 4)), FullyAdaptiveRouter(),
                          marking=DdpmScheme(), seed=2)
        victim = cluster.default_victim()
        pipeline = cluster.attach_pipeline(victim)
        truth = cluster.launch_ddos(victim=victim, num_attackers=3,
                                    duration=2.0, attack_rate_per_node=20.0)
        cluster.run()
        assert pipeline.suspects() == frozenset(truth.attackers)

    def test_explicit_attackers(self):
        cluster = Cluster(Mesh((4, 4)), FullyAdaptiveRouter(),
                          marking=DdpmScheme(), seed=2)
        truth = cluster.launch_ddos(victim=15, attackers=[1, 2], duration=1.0)
        assert truth.attackers == (1, 2)

    def test_attackers_never_include_victim(self):
        cluster = Cluster(Mesh((4, 4)), FullyAdaptiveRouter(),
                          marking=DdpmScheme(), seed=5)
        for _ in range(5):
            truth = cluster.launch_ddos(victim=7, num_attackers=5, duration=0.1)
            assert 7 not in truth.attackers

    def test_too_many_attackers_rejected(self):
        cluster = Cluster(Mesh((2, 2)), FullyAdaptiveRouter(),
                          marking=DdpmScheme(), seed=0)
        with pytest.raises(ConfigurationError):
            cluster.launch_ddos(victim=3, num_attackers=4)

    def test_pipeline_requires_marking(self):
        cluster = Cluster(Mesh((4, 4)), FullyAdaptiveRouter(), seed=0)
        with pytest.raises(ConfigurationError):
            cluster.attach_pipeline(15)

    def test_run_until(self):
        cluster = Cluster(Mesh((4, 4)), FullyAdaptiveRouter(),
                          marking=DdpmScheme(), seed=0)
        cluster.launch_ddos(victim=15, attackers=[0], duration=5.0,
                            attack_rate_per_node=10.0)
        cluster.run(until=1.0)
        partial = cluster.fabric.counters["delivered"]
        cluster.run()
        assert cluster.fabric.counters["delivered"] > partial
