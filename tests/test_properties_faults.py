"""Property-based tests (hypothesis) for fault robustness.

The ISSUE's robustness claim: for any link-failure probability in
[0, 0.3], a full identification experiment on a small fabric completes
without raising, conserves packets, and DDPM accuracy does not *improve*
as the fabric degrades (monotone-ish, checked against the fault-free
baseline with slack rather than pairwise — single-seed runs are noisy).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import (
    ExperimentConfig,
    MarkingSpec,
    RoutingSpec,
    SelectionSpec,
    TopologySpec,
)
from repro.core.experiment import run_identification_experiment
from repro.faults import FaultCampaign, RandomLinkFlapSpec

#: single shared settings: experiments are slow, keep the example count low.
EXPERIMENT_SETTINGS = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _config(probability, seed, topology="torus"):
    faults = None
    if probability > 0.0:
        faults = FaultCampaign((
            RandomLinkFlapSpec(probability=probability, mean_downtime=0.5),
        ))
    return ExperimentConfig(
        topology=TopologySpec(topology, (4, 4)),
        routing=RoutingSpec("fully-adaptive"),
        marking=MarkingSpec("ddpm"),
        selection=SelectionSpec("random"),
        seed=seed,
        num_attackers=2,
        attack_rate_per_node=30.0,
        background_rate=1.0,
        duration=1.0,
        faults=faults,
    )


class TestNeverCrashes:
    @EXPERIMENT_SETTINGS
    @given(probability=st.floats(0.0, 0.3, allow_nan=False),
           seed=st.integers(0, 2**16),
           topology=st.sampled_from(["mesh", "torus"]))
    def test_experiment_completes_and_conserves(self, probability, seed,
                                                topology):
        result = run_identification_experiment(
            _config(probability, seed, topology))
        assert 0.0 <= result.score.precision <= 1.0
        assert 0.0 <= result.score.recall <= 1.0
        assert result.packets_delivered > 0
        assert result.packets_dropped >= 0
        assert result.packets_analyzed <= result.packets_delivered
        if probability > 0.0:
            fault_info = result.extra["faults"]
            assert fault_info["links_failed"] >= fault_info["links_restored"]
        else:
            # zero-cost when off: no fault machinery in the record
            assert "faults" not in result.extra


class TestAccuracyDegradesGracefully:
    @EXPERIMENT_SETTINGS
    @given(probability=st.floats(0.05, 0.3, allow_nan=False),
           seed=st.integers(0, 2**10))
    def test_faults_never_beat_the_healthy_baseline(self, probability, seed):
        # Monotone-ish: a degraded fabric may lose marked packets and
        # accuracy, but must never *beat* a healthy fabric's recall by more
        # than single-run noise (slack 0.34 ~= one attacker of two).
        healthy = run_identification_experiment(_config(0.0, seed))
        faulty = run_identification_experiment(_config(probability, seed))
        assert faulty.score.recall <= healthy.score.recall + 0.34
