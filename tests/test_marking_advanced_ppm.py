"""Unit and integration tests for Song-Perrig advanced marking (§2)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FieldLayoutError
from repro.marking import AdvancedPpmScheme, FragmentPpmScheme
from repro.marking.ppm_fragment import FragmentEncoder
from repro.defense.metrics import packets_until_identified
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import DimensionOrderRouter, MinimalAdaptiveRouter, RandomPolicy, walk_route
from repro.topology import Mesh


def make_scheme(topology, probability=0.2, seed=0, **kw):
    scheme = AdvancedPpmScheme(probability, np.random.default_rng(seed), **kw)
    scheme.attach(topology)
    return scheme


def run_flow(scheme, topology, src, dst, count, analysis=None, router=None,
             select=None):
    router = router if router is not None else DimensionOrderRouter()
    select = select if select is not None else (lambda c, cur: c[0])
    analysis = analysis if analysis is not None else scheme.new_victim_analysis(dst)
    for _ in range(count):
        path = walk_route(topology, router, src, dst, select)
        packet = Packet(IPHeader(1, 2), src, dst)
        scheme.on_inject(packet, src)
        for u, v in zip(path[:-1], path[1:]):
            scheme.on_hop(packet, u, v)
        analysis.observe(packet)
    return analysis


class TestConstruction:
    def test_hash_width_independent_of_network_size(self):
        # The scheme's selling point: attaches to networks far beyond
        # Table 1's 8x8 limit (16x16 with the default 11-bit hash; larger
        # diameters trade hash bits for distance bits).
        scheme = make_scheme(Mesh((16, 16)))
        assert scheme.layout.used_bits == 16
        scheme32 = make_scheme(Mesh((32, 32)), hash_bits_width=10)
        assert scheme32.distance_bits == 6

    def test_distance_slot_must_cover_diameter(self):
        # 64x64 mesh: diameter 126 needs 7 distance bits; 11+5 fails but a
        # narrower hash works.
        with pytest.raises(FieldLayoutError):
            make_scheme(Mesh((64, 64)))
        scheme = make_scheme(Mesh((64, 64)), hash_bits_width=9)
        assert scheme.distance_bits == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdvancedPpmScheme(0.1, None)
        with pytest.raises(ConfigurationError):
            AdvancedPpmScheme(0.1, np.random.default_rng(0), hash_bits_width=2)


class TestMarking:
    def test_marked_then_xored(self, mesh44):
        scheme = make_scheme(mesh44, probability=1.0)
        packet = Packet(IPHeader(1, 2), 0, 15)
        scheme.on_inject(packet, 0)
        scheme.on_hop(packet, 0, 1)  # p=1: marks
        values = scheme.layout.unpack(packet.header.identification)
        assert values["edge"] == scheme.node_hash(0)
        assert values["distance"] == 0
        scheme.probability = 0.0
        scheme.on_hop(packet, 1, 2)  # else-branch: XOR + increment
        values = scheme.layout.unpack(packet.header.identification)
        assert values["edge"] == scheme.node_hash(0) ^ scheme.node_hash(1)
        assert values["distance"] == 1

    def test_distance_saturates(self, mesh44):
        scheme = make_scheme(mesh44, probability=0.0)
        packet = Packet(IPHeader(1, 2), 0, 15)
        scheme.on_inject(packet, 0)
        for _ in range(100):
            scheme.on_hop(packet, 0, 1)
        assert (scheme.layout.unpack(packet.header.identification)["distance"]
                == scheme.max_distance)


class TestReconstruction:
    def test_single_source_identified(self, mesh44):
        scheme = make_scheme(mesh44, probability=0.25, seed=1)
        analysis = run_flow(scheme, mesh44, 0, 15, 400)
        assert analysis.suspects() == frozenset({0})

    def test_levels_follow_true_path(self, mesh44):
        scheme = make_scheme(mesh44, probability=0.25, seed=2)
        analysis = run_flow(scheme, mesh44, 0, 15, 600)
        levels = analysis.reconstruct()
        path = walk_route(mesh44, DimensionOrderRouter(), 0, 15,
                          lambda c, cur: c[0])
        # The last forwarding switch sits at level 0, the source deepest.
        assert path[-2] in levels[0]
        deepest = max(levels)
        assert 0 in levels[deepest]

    def test_multiple_sources(self, mesh44):
        scheme = make_scheme(mesh44, probability=0.25, seed=3)
        analysis = scheme.new_victim_analysis(15)
        for src in (0, 3, 5):
            run_flow(scheme, mesh44, src, 15, 400, analysis=analysis)
        assert analysis.suspects() == frozenset({0, 3, 5})

    def test_no_marks_no_suspects(self, mesh44):
        scheme = make_scheme(mesh44)
        analysis = scheme.new_victim_analysis(15)
        assert analysis.suspects() == frozenset()

    def test_adaptive_routing_degrades(self):
        topology = Mesh((5, 5))
        scheme = make_scheme(Mesh((5, 5)), probability=0.25, seed=4)
        rng = np.random.default_rng(5)
        analysis = scheme.new_victim_analysis(24)
        for src in (0, 4):
            run_flow(scheme, topology, src, 24, 500, analysis=analysis,
                     router=MinimalAdaptiveRouter(),
                     select=RandomPolicy(rng).binder())
        # Path-based scheme: adaptivity breaks exactness one way or another.
        assert analysis.suspects() != frozenset({0, 4})


class TestSongPerrigClaim:
    def test_fewer_packets_than_fragment_ppm(self, mesh44):
        """§2: advanced marking needs ~8x fewer packets than fragment PPM."""

        def stream(scheme, count=100000):
            path = walk_route(mesh44, DimensionOrderRouter(), 0, 15,
                              lambda c, cur: c[0])
            for _ in range(count):
                packet = Packet(IPHeader(1, 2), 0, 15)
                scheme.on_inject(packet, 0)
                for u, v in zip(path[:-1], path[1:]):
                    scheme.on_hop(packet, u, v)
                yield packet

        advanced = make_scheme(mesh44, probability=0.2, seed=6)
        adv_needed = packets_until_identified(
            advanced.new_victim_analysis(15), stream(advanced), {0},
            check_every=10)

        fragment = FragmentPpmScheme(0.2, np.random.default_rng(6),
                                     encoder=FragmentEncoder(num_fragments=4,
                                                             check_bits=8))
        fragment.attach(Mesh((4, 4)))
        frag_needed = packets_until_identified(
            fragment.new_victim_analysis(15), stream(fragment), {0},
            check_every=50)

        assert adv_needed is not None and frag_needed is not None
        assert frag_needed > 4 * adv_needed
