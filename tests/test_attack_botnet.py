"""Unit tests for botnet coordination and the composite DDoS scheduler."""

import numpy as np
import pytest

from repro.attack.botnet import Botnet
from repro.attack.ddos import schedule_attack_flood
from repro.attack.spoofing import NoSpoofing
from repro.errors import ConfigurationError
from repro.network import Fabric
from repro.routing import DimensionOrderRouter
from repro.topology import Mesh


@pytest.fixture
def fabric():
    return Fabric(Mesh((4, 4)), DimensionOrderRouter())


class TestBotnet:
    def test_recruit_excludes_victim(self, mesh44, rng):
        botnet = Botnet.recruit(mesh44, 5, rng, exclude=[15])
        assert 15 not in botnet.slaves
        assert len(botnet.slaves) == 5

    def test_recruit_too_many_rejected(self, mesh44, rng):
        with pytest.raises(ConfigurationError):
            Botnet.recruit(mesh44, 16, rng, exclude=[15])

    def test_empty_botnet_rejected(self):
        with pytest.raises(ConfigurationError):
            Botnet([])

    def test_duplicate_slaves_deduped(self):
        assert Botnet([3, 3, 5]).slaves == (3, 5)

    def test_launch_schedules_per_slave(self, fabric, rng):
        botnet = Botnet([1, 2, 4], spoofing=NoSpoofing())
        per_slave = botnet.launch(fabric, 15, rate_per_slave=20.0,
                                  duration=2.0, rng=rng)
        assert set(per_slave) == {1, 2, 4}
        for slave, packets in per_slave.items():
            assert packets
            assert all(p.true_source == slave for p in packets)

    def test_launch_on_victim_slave_rejected(self, fabric, rng):
        botnet = Botnet([15])
        with pytest.raises(ConfigurationError):
            botnet.launch(fabric, 15, rate_per_slave=1.0, duration=1.0, rng=rng)

    def test_default_spoofing_defeats_ingress_semantics(self, fabric, rng):
        # Default in-cluster spoofs: valid cluster addresses, never honest.
        botnet = Botnet([1, 2])
        per_slave = botnet.launch(fabric, 15, rate_per_slave=30.0,
                                  duration=1.0, rng=rng)
        for slave, packets in per_slave.items():
            for p in packets:
                assert fabric.addresses.contains(p.header.src)
                assert p.header.src != fabric.addresses.ip_of(slave)

    def test_start_jitter_staggers(self, fabric):
        rng = np.random.default_rng(0)
        botnet = Botnet(list(range(8)))
        per_slave = botnet.launch(fabric, 15, rate_per_slave=1000.0,
                                  duration=0.5, rng=rng, start_jitter=5.0)
        firsts = sorted(min(p.seq for p in pkts) for pkts in per_slave.values())
        assert firsts  # scheduling succeeded; jitter exercised the path


class TestScheduleAttackFlood:
    def test_ground_truth_complete(self, fabric, rng):
        truth = schedule_attack_flood(
            fabric, victim=15, attackers=(1, 6), attack_rate_per_node=30.0,
            duration=2.0, rng=rng, background_rate=2.0,
        )
        assert truth.victim == 15
        assert truth.attackers == (1, 6)
        assert truth.attack_packets and truth.background_packets
        attack_ids = truth.attack_packet_ids
        for p in truth.attack_packets:
            assert truth.is_attack_packet(p)
        for p in truth.background_packets:
            assert p.packet_id not in attack_ids

    def test_background_excludes_victim_as_source(self, fabric, rng):
        truth = schedule_attack_flood(
            fabric, victim=15, attackers=(1,), attack_rate_per_node=5.0,
            duration=2.0, rng=rng, background_rate=3.0,
        )
        assert all(p.true_source != 15 for p in truth.background_packets)

    def test_runs_to_completion(self, fabric, rng):
        truth = schedule_attack_flood(
            fabric, victim=15, attackers=(1, 6), attack_rate_per_node=10.0,
            duration=1.0, rng=rng,
        )
        fabric.run()
        assert fabric.counters["delivered"] == len(truth.attack_packets)
