"""Unit tests for output-selection policies."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.routing.selection import (
    FirstCandidatePolicy,
    LeastCongestedPolicy,
    RandomPolicy,
)


class TestFirstCandidate:
    def test_picks_first(self):
        assert FirstCandidatePolicy().choose((7, 3, 9), 0) == 7

    def test_empty_rejected(self):
        with pytest.raises(RoutingError):
            FirstCandidatePolicy().choose((), 0)


class TestRandom:
    def test_only_candidates_returned(self):
        policy = RandomPolicy(np.random.default_rng(0))
        for _ in range(100):
            assert policy.choose((4, 8), 0) in (4, 8)

    def test_covers_all_candidates(self):
        policy = RandomPolicy(np.random.default_rng(0))
        seen = {policy.choose((1, 2, 3), 0) for _ in range(200)}
        assert seen == {1, 2, 3}

    def test_single_candidate_shortcut(self):
        policy = RandomPolicy(np.random.default_rng(0))
        assert policy.choose((42,), 0) == 42

    def test_reproducible(self):
        a = RandomPolicy(np.random.default_rng(5))
        b = RandomPolicy(np.random.default_rng(5))
        seq_a = [a.choose((1, 2, 3, 4), 0) for _ in range(20)]
        seq_b = [b.choose((1, 2, 3, 4), 0) for _ in range(20)]
        assert seq_a == seq_b


class TestLeastCongested:
    def test_picks_minimum_load(self):
        loads = {(0, 1): 5.0, (0, 2): 1.0, (0, 3): 3.0}
        policy = LeastCongestedPolicy(lambda u, v: loads[(u, v)])
        assert policy.choose((1, 2, 3), 0) == 2

    def test_tie_breaks_first_without_rng(self):
        policy = LeastCongestedPolicy(lambda u, v: 0.0)
        assert policy.choose((9, 4), 0) == 9

    def test_tie_breaks_randomly_with_rng(self):
        policy = LeastCongestedPolicy(lambda u, v: 0.0,
                                      rng=np.random.default_rng(0))
        seen = {policy.choose((9, 4), 0) for _ in range(50)}
        assert seen == {4, 9}

    def test_binder_is_callable_form(self):
        policy = FirstCandidatePolicy()
        select = policy.binder()
        assert select((5,), 0) == 5
