"""Tests for DPM ambiguity, XOR ambiguity, and the overhead model."""

import numpy as np
import pytest

from repro.analysis.ambiguity import paper_xor_ambiguity, xor_ambiguity_exact
from repro.analysis.dpm_model import (
    neighbor_bit_collision_rate,
    overwrite_horizon,
    signature_table_ambiguity,
)
from repro.analysis.overhead import (
    DEFAULT_OP_WEIGHTS,
    measure_on_hop_time,
    weighted_cost,
)
from repro.errors import ConfigurationError
from repro.marking import DdpmScheme, DpmScheme, FullIndexEncoder, PpmScheme
from repro.routing import DimensionOrderRouter
from repro.topology import Hypercube, Mesh


class TestXorAmbiguity:
    def test_ambiguity_grows_with_size(self):
        small = xor_ambiguity_exact(Mesh((4, 4)))
        large = xor_ambiguity_exact(Mesh((16, 16)))
        assert large["mean_edges_per_value"] > small["mean_edges_per_value"]

    def test_distinct_values_equal_label_bits(self):
        # One-hot XOR values: at most label_bits distinct values.
        stats = xor_ambiguity_exact(Mesh((8, 8)))
        assert stats["distinct_xor_values"] <= stats["label_bits"]

    def test_paper_estimate_same_order(self):
        # The paper's n(n-1)/log2(n) is a per-orientation estimate; exact
        # mean is within a small factor for square meshes.
        n = 16
        exact = xor_ambiguity_exact(Mesh((n, n)))["mean_edges_per_value"]
        paper = paper_xor_ambiguity(n)
        assert 0.2 < exact / paper < 5.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            paper_xor_ambiguity(1)


class TestDpmModel:
    def test_overwrite_horizon(self):
        assert overwrite_horizon() == 16
        assert overwrite_horizon(8) == 8

    def test_collision_rate_bounds(self):
        scheme = DpmScheme()
        scheme.attach(Mesh((8, 8)))
        rate = neighbor_bit_collision_rate(Mesh((8, 8)), scheme)
        assert 0.0 <= rate <= 1.0

    def test_table_ambiguity_stats(self):
        table = {
            0x1: frozenset({1}),
            0x2: frozenset({2, 3, 4}),
        }
        stats = signature_table_ambiguity(table)
        assert stats["signatures"] == 2
        assert stats["mean_sources_per_signature"] == 2.0
        assert stats["max_sources_per_signature"] == 3
        assert stats["ambiguous_source_fraction"] == pytest.approx(3 / 4)

    def test_empty_table(self):
        stats = signature_table_ambiguity({})
        assert stats["signatures"] == 0


class TestOverheadModel:
    def test_ddpm_cheaper_than_dpm_per_weights(self):
        mesh = Mesh((8, 8))
        ddpm = DdpmScheme()
        ddpm.attach(mesh)
        dpm = DpmScheme()
        dpm.attach(mesh)
        # DDPM: 2 adds + read + write = 4; DPM: hash(8) + read + write = 10.
        assert (weighted_cost(ddpm.per_hop_operations())
                < weighted_cost(dpm.per_hop_operations()))

    def test_unknown_operation_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_cost({"teleport": 1})

    def test_custom_weights(self):
        cost = weighted_cost({"add": 3}, weights={"add": 2.0})
        assert cost == 6.0

    def test_measured_time_positive_and_comparable(self):
        mesh = Mesh((8, 8))
        ddpm = DdpmScheme()
        ddpm.attach(mesh)
        t = measure_on_hop_time(ddpm, mesh, DimensionOrderRouter(),
                                source=0, destination=63, repetitions=50)
        assert t > 0.0
        assert t < 1e-3  # microseconds per hop, not milliseconds

    def test_measure_validation(self):
        mesh = Mesh((4, 4))
        scheme = DdpmScheme()
        scheme.attach(mesh)
        with pytest.raises(ConfigurationError):
            measure_on_hop_time(scheme, mesh, DimensionOrderRouter(),
                                source=0, destination=0)
        with pytest.raises(ConfigurationError):
            measure_on_hop_time(scheme, mesh, DimensionOrderRouter(),
                                source=0, destination=1, repetitions=0)
