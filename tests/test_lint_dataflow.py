"""Fixtures for the interprocedural dataflow rules: D4 (rng-provenance)
and D5 (wallclock-taint-escape)."""

import ast

from repro.lint import lint_sources
from repro.lint.dataflow import compute_tainted_exports

ATTACK = "src/repro/attack/mod.py"
ENGINE = "src/repro/engine/mod.py"
MARKING = "src/repro/marking/mod.py"
RNG_SOURCE = "src/repro/engine/rng.py"
WATCHDOG = "src/repro/engine/watchdog.py"
ANALYSIS = "src/repro/analysis/mod.py"


def run_lint(*files, select=None):
    return lint_sources(list(files), select=select)


def rules_hit(report):
    return {v.rule for v in report.violations}


class TestD4RngProvenance:
    def test_flags_ad_hoc_creation_and_draw(self):
        report = run_lint((ATTACK,
                           "import numpy as np\n\n"
                           "def f():\n"
                           "    rng = np.random.default_rng(3)\n"
                           "    return rng.random()\n"),
                          select=["D4"])
        assert [v.rule for v in report.violations] == ["D4", "D4"]
        assert {v.line for v in report.violations} == {4, 5}

    def test_flags_module_global_generator_draw(self):
        report = run_lint((ATTACK,
                           "import numpy as np\n"
                           "G = np.random.default_rng(7)\n\n"
                           "def f():\n"
                           "    return G.random()\n"),
                          select=["D4"])
        messages = [v.message for v in report.violations]
        assert any("ad-hoc generator construction" in m for m in messages)
        assert any("'G'" in m for m in messages)

    def test_flags_self_attr_creation_across_methods(self):
        report = run_lint((MARKING,
                           "import numpy as np\n\n"
                           "class Scheme:\n"
                           "    def __init__(self, seed):\n"
                           "        self._rng = np.random.default_rng(seed)\n\n"
                           "    def mark(self):\n"
                           "        return self._rng.random()\n"),
                          select=["D4"])
        assert any("self._rng" in v.message for v in report.violations)

    def test_class_attr_origin_merges_across_files(self):
        # The creation lives in one file, the draw in another: the merge by
        # class name still connects them.
        ctor = (MARKING,
                "import numpy as np\n\n"
                "class Scheme:\n"
                "    def __init__(self):\n"
                "        self._rng = np.random.default_rng(1)\n")
        draw = ("src/repro/marking/other.py",
                "class Scheme:\n"
                "    def mark(self):\n"
                "        return self._rng.random()\n")
        report = run_lint(ctor, draw, select=["D4"])
        assert any(v.path.endswith("other.py") and "self._rng" in v.message
                   for v in report.violations)

    def test_flags_foreign_generator_chain(self):
        report = run_lint((ATTACK,
                           "def f(fabric):\n"
                           "    return fabric.sim.rng.random()\n"),
                          select=["D4"])
        assert any("another component's generator" in v.message
                   for v in report.violations)

    def test_named_stream_and_parameter_draws_are_clean(self):
        report = run_lint((ATTACK,
                           "def f(sim, rng):\n"
                           "    a = sim.rng.stream('x')\n"
                           "    return a.integers(4) + rng.random()\n"),
                          select=["D4"])
        assert report.ok

    def test_blessed_self_attr_from_stream_is_clean(self):
        report = run_lint((MARKING,
                           "class Scheme:\n"
                           "    def __init__(self, registry):\n"
                           "        self.rng = registry.stream('scheme')\n\n"
                           "    def mark(self):\n"
                           "        return self.rng.random()\n"),
                          select=["D4"])
        assert report.ok

    def test_derive_child_result_is_clean(self):
        report = run_lint((ATTACK,
                           "from repro.engine.rng import derive_child\n\n"
                           "def f(rng):\n"
                           "    child = derive_child(rng)\n"
                           "    return child.random()\n"),
                          select=["D4"])
        assert report.ok

    def test_engine_rng_module_is_exempt(self):
        report = run_lint((RNG_SOURCE,
                           "import numpy as np\n\n"
                           "def derive_child(rng):\n"
                           "    return np.random.default_rng(int(rng.integers(2**63)))\n"),
                          select=["D4"])
        assert report.ok

    def test_non_simulation_packages_are_out_of_scope(self):
        report = run_lint((ANALYSIS,
                           "import numpy as np\n\n"
                           "def f():\n"
                           "    rng = np.random.default_rng(3)\n"
                           "    return rng.random()\n"),
                          select=["D4"])
        assert report.ok


WATCHDOG_SRC = (
    "import time\n\n"
    "class Watchdog:\n"
    "    def start(self):\n"
    "        self._t0 = time.monotonic()\n\n"
    "    def wall_elapsed(self):\n"
    "        return time.monotonic() - self._t0\n\n"
    "    def record(self, fn):\n"
    "        start = time.perf_counter()\n"
    "        out = fn()\n"
    "        self.total = time.perf_counter() - start\n"
    "        return out\n"
)


class TestD5WallclockTaintEscape:
    def test_tainted_exports_fixpoint(self):
        exports = compute_tainted_exports(ast.parse(WATCHDOG_SRC))
        assert "wall_elapsed" in exports   # returns a clock-derived value
        assert "_t0" in exports            # holds one
        assert "total" in exports
        # record() times the callee but returns the callee's result.
        assert "record" not in exports

    def test_flags_tainted_read_in_simulation_code(self):
        report = run_lint(
            (WATCHDOG, WATCHDOG_SRC),
            (ENGINE, "def f(sim):\n    return sim.watchdog.wall_elapsed()\n"),
            select=["D5"],
        )
        assert [v.rule for v in report.violations] == ["D5"]
        assert report.violations[0].path == ENGINE
        assert "wall_elapsed" in report.violations[0].message

    def test_untainted_reads_through_watchdog_are_clean(self):
        report = run_lint(
            (WATCHDOG, WATCHDOG_SRC),
            (ENGINE, "def f(sim):\n    return sim.watchdog.check_interval\n"),
            select=["D5"],
        )
        assert report.ok

    def test_reads_outside_simulation_packages_are_clean(self):
        report = run_lint(
            (WATCHDOG, WATCHDOG_SRC),
            ("src/repro/runner/mod.py",
             "def f(sim):\n    return sim.watchdog.wall_elapsed()\n"),
            select=["D5"],
        )
        assert report.ok

    def test_no_exports_means_no_findings(self):
        # A profiler that only forwards callee results taints nothing, so
        # perimeter reads through it stay clean.
        profiler = ("src/repro/engine/profile.py",
                    "import time\n\n"
                    "class EventProfiler:\n"
                    "    def record(self, fn):\n"
                    "        start = time.perf_counter()\n"
                    "        return fn()\n")
        report = run_lint(
            profiler,
            (ENGINE, "def f(sim):\n    return sim.profiler.record(len)\n"),
            select=["D5"],
        )
        assert report.ok
