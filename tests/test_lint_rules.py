"""Per-rule fixtures for repro.lint: positives, negatives, suppressions, JSON."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.lint import Violation, lint_sources, main
from repro.lint.runner import collect_files

# Fixture paths: scoped rules key off the path component after "repro/".
ENGINE = "src/repro/engine/mod.py"
NETWORK = "src/repro/network/mod.py"
MARKING = "src/repro/marking/mod.py"
RUNNER = "src/repro/runner/mod.py"
WATCHDOG = "src/repro/engine/watchdog.py"
UTIL = "src/repro/util/mod.py"
OUTSIDE = "tools/script.py"


def run_lint(path, source, select=None):
    """Lint one in-memory file; returns the report."""
    return lint_sources([(path, source)], select=select)


def rules_hit(report):
    """Set of rule ids present in a report."""
    return {v.rule for v in report.violations}


class TestD1NoWallclock:
    def test_flags_time_time_in_engine(self):
        report = run_lint(ENGINE, "import time\n\ndef f():\n    return time.time()\n")
        assert [v.rule for v in report.violations] == ["D1"]
        assert report.violations[0].line == 4

    def test_flags_from_import_perf_counter(self):
        report = run_lint(ENGINE, "from time import perf_counter\n")
        assert rules_hit(report) == {"D1"}

    def test_flags_datetime_now(self):
        report = run_lint(MARKING,
                          "import datetime\n\ndef f():\n"
                          "    return datetime.datetime.now()\n")
        assert rules_hit(report) == {"D1"}

    def test_allows_wallclock_in_runner(self):
        report = run_lint(RUNNER, "import time\n\ndef f():\n    return time.time()\n")
        assert "D1" not in rules_hit(report)

    def test_allows_wallclock_in_watchdog(self):
        report = run_lint(WATCHDOG, "import time\n\ndef f():\n    return time.time()\n")
        assert "D1" not in rules_hit(report)

    def test_allows_simulated_time_attribute(self):
        # .time on a non-`time` receiver is the simulator clock, not a host
        # clock.
        report = run_lint(ENGINE, "def f(sim):\n    return sim.time\n")
        assert "D1" not in rules_hit(report)


class TestD2NoGlobalRng:
    def test_flags_global_random_call(self):
        report = run_lint(UTIL, "import random\n\ndef f():\n    return random.random()\n")
        assert rules_hit(report) == {"D2"}

    def test_flags_unseeded_random_random_class(self):
        report = run_lint(UTIL, "import random\n\ndef f():\n    return random.Random()\n")
        assert rules_hit(report) == {"D2"}

    def test_allows_seeded_random_random(self):
        report = run_lint(UTIL, "import random\n\ndef f(s):\n    return random.Random(s)\n")
        assert "D2" not in rules_hit(report)

    def test_flags_unseeded_default_rng(self):
        report = run_lint(UTIL, "import numpy as np\n\ndef f():\n"
                                "    return np.random.default_rng()\n")
        assert rules_hit(report) == {"D2"}

    def test_allows_seeded_default_rng(self):
        report = run_lint(UTIL, "import numpy as np\n\ndef f(seed):\n"
                                "    return np.random.default_rng(seed)\n")
        assert "D2" not in rules_hit(report)

    def test_flags_np_random_module_draw(self):
        report = run_lint(UTIL, "import numpy as np\n\ndef f():\n"
                                "    return np.random.rand(3)\n")
        assert rules_hit(report) == {"D2"}

    def test_outside_repro_tree_not_checked(self):
        report = run_lint(OUTSIDE, "import random\n\ndef f():\n"
                                   "    return random.random()\n")
        assert report.ok


class TestD3OrderedIteration:
    SCHEDULING_SET_LOOP = (
        "def f(self, nodes):\n"
        "    pending = set(nodes)\n"
        "    for node in pending:\n"
        "        self.sim.schedule_call(1.0, self.visit, node)\n"
    )

    def test_flags_set_iteration_while_scheduling(self):
        report = run_lint(ENGINE, self.SCHEDULING_SET_LOOP)
        assert rules_hit(report) == {"D3"}
        assert report.violations[0].line == 3

    def test_flags_keys_view_in_rng_function(self):
        source = ("def f(rng, table):\n"
                  "    return [rng.random() for key in table.keys()]\n")
        report = run_lint(ENGINE, source)
        assert rules_hit(report) == {"D3"}

    def test_sorted_wrapping_is_clean(self):
        source = ("def f(self, nodes):\n"
                  "    for node in sorted(set(nodes)):\n"
                  "        self.sim.schedule_call(1.0, self.visit, node)\n")
        report = run_lint(ENGINE, source)
        assert "D3" not in rules_hit(report)

    def test_set_iteration_without_rng_or_scheduling_is_clean(self):
        report = run_lint(ENGINE, "def f(nodes):\n"
                                  "    return sum(1 for n in set(nodes))\n")
        assert "D3" not in rules_hit(report)

    def test_order_preserving_wrapper_is_unwrapped(self):
        source = ("def f(self, nodes):\n"
                  "    for node in list({1, 2, 3}):\n"
                  "        self.sim.schedule_call(1.0, self.visit, node)\n")
        report = run_lint(ENGINE, source)
        assert rules_hit(report) == {"D3"}


class TestH1NoClosureScheduling:
    def test_flags_lambda_argument(self):
        report = run_lint(ENGINE, "def f(sim):\n"
                                  "    sim.schedule_call(1.0, lambda: None)\n")
        assert rules_hit(report) == {"H1"}

    def test_flags_nested_def_argument(self):
        source = ("def f(sim):\n"
                  "    def cb():\n"
                  "        pass\n"
                  "    sim.schedule_call(1.0, cb)\n")
        report = run_lint(ENGINE, source)
        assert rules_hit(report) == {"H1"}

    def test_bound_method_with_args_is_clean(self):
        report = run_lint(ENGINE, "def f(sim, obj):\n"
                                  "    sim.schedule_call(1.0, obj.visit, 3)\n")
        assert report.ok

    def test_module_level_function_argument_is_clean(self):
        source = ("def cb():\n"
                  "    pass\n"
                  "\n"
                  "def f(sim):\n"
                  "    sim.schedule_call(1.0, cb)\n")
        report = run_lint(ENGINE, source)
        assert report.ok

    def test_applies_outside_repro_tree_too(self):
        report = run_lint(OUTSIDE, "def f(sim):\n"
                                   "    sim.schedule_call(1.0, lambda: None)\n")
        assert rules_hit(report) == {"H1"}


class TestH2NoPerPacketCallbacks:
    def test_flags_delivery_handler_in_network(self):
        report = run_lint(NETWORK,
                          "def wire(fabric, node, fn):\n"
                          "    fabric.add_delivery_handler(node, fn)\n")
        assert rules_hit(report) == {"H2"}
        assert report.violations[0].line == 2

    def test_flags_drop_and_transit_registrations(self):
        report = run_lint(NETWORK,
                          "def wire(fabric, node, fn):\n"
                          "    fabric.add_drop_handler(node, fn)\n"
                          "    fabric.add_transit_observer(node, fn)\n")
        assert [v.rule for v in report.violations] == ["H2", "H2"]

    def test_outside_network_tree_is_clean(self):
        # The rule scopes to hot-path network/ modules; defense or test code
        # registering handlers is legitimate consumer wiring.
        report = run_lint(MARKING,
                          "def wire(fabric, node, fn):\n"
                          "    fabric.add_delivery_handler(node, fn)\n")
        assert "H2" not in rules_hit(report)

    def test_sink_attachment_is_clean(self):
        report = run_lint(NETWORK,
                          "def wire(fabric, node, consumer):\n"
                          "    fabric.attach_delivery_sink(node, consumer)\n")
        assert report.ok

    def test_bare_name_call_is_clean(self):
        # Only attribute-style registrations count; a local helper that
        # happens to share the name is not callback wiring.
        report = run_lint(NETWORK,
                          "def f(add_delivery_handler):\n"
                          "    add_delivery_handler()\n")
        assert "H2" not in rules_hit(report)

    def test_suppression_comment_sanctions_diagnostics(self):
        report = run_lint(NETWORK,
                          "def wire(fabric, node, fn):\n"
                          "    fabric.add_delivery_handler(node, fn)"
                          "  # repro-lint: disable=H2\n")
        assert "H2" not in rules_hit(report)


class TestH3NoPerPacketPythonInBatchedPath:
    BATCHED = "src/repro/engine/batched.py"
    COLQUEUE = "src/repro/network/colqueue.py"

    def test_flags_for_loop_in_batched_engine(self):
        report = run_lint(self.BATCHED,
                          "class CohortEngine:\n"
                          "    def advance(self, rows):\n"
                          "        for row in rows:\n"
                          "            row.step()\n")
        assert rules_hit(report) == {"H3"}
        assert report.violations[0].line == 3

    def test_flags_while_loop_in_colqueue(self):
        report = run_lint(self.COLQUEUE,
                          "class DrainEngine:\n"
                          "    def run(self, queue):\n"
                          "        while queue:\n"
                          "            queue.pop()\n")
        assert rules_hit(report) == {"H3"}

    def test_flags_helper_reachable_from_advance(self):
        # The loop lives in a free function, but advance() calls it, so it
        # sits on the per-step hot path and is flagged through the call
        # graph.
        report = run_lint(self.BATCHED,
                          "class CohortEngine:\n"
                          "    def advance(self):\n"
                          "        drain(self.rows)\n"
                          "\n"
                          "def drain(rows):\n"
                          "    for row in rows:\n"
                          "        row.step()\n")
        assert rules_hit(report) == {"H3"}
        assert report.violations[0].line == 6

    def test_build_time_helper_loop_is_clean(self):
        # Loops in construction-time code (not reachable from any engine
        # run/advance method) are fine: they run once, not per step.
        report = run_lint(self.BATCHED,
                          "class CohortEngine:\n"
                          "    def advance(self):\n"
                          "        pass\n"
                          "\n"
                          "def build(rows):\n"
                          "    for row in rows:\n"
                          "        row.freeze()\n")
        assert "H3" not in rules_hit(report)

    def test_module_scope_loop_is_always_flagged(self):
        report = run_lint(self.BATCHED,
                          "ROWS = []\n"
                          "for row in ROWS:\n"
                          "    row.step()\n")
        assert "H3" in rules_hit(report)

    def test_flags_per_packet_registration(self):
        # add_delivery_handler in colqueue trips both the network-wide H2
        # rule and the batched-path H3 rule.
        report = run_lint(self.COLQUEUE,
                          "def wire(fabric, node, fn):\n"
                          "    fabric.add_delivery_handler(node, fn)\n")
        assert rules_hit(report) == {"H2", "H3"}

    def test_comprehensions_are_allowed(self):
        report = run_lint(self.BATCHED,
                          "def columns(rows):\n"
                          "    return [row.words for row in rows]\n")
        assert "H3" not in rules_hit(report)

    def test_other_engine_modules_are_clean(self):
        report = run_lint(ENGINE,
                          "def advance(rows):\n"
                          "    for row in rows:\n"
                          "        row.step()\n")
        assert "H3" not in rules_hit(report)

    def test_suppression_comment_sanctions_setup_loop(self):
        report = run_lint(self.BATCHED,
                          "def build(topology, port):\n"
                          "    for node in topology.nodes():"
                          "  # repro-lint: disable=H3\n"
                          "        port[node] = 0\n")
        assert "H3" not in rules_hit(report)

    def test_in_tree_batched_modules_pass(self):
        # The real cohort engine and columnar queue must satisfy their own
        # rule (their sanctioned setup loops carry explicit suppressions).
        from pathlib import Path

        for module in ("src/repro/engine/batched.py",
                       "src/repro/network/colqueue.py"):
            source = Path(module).read_text()
            report = run_lint(module, source, select=["H3"])
            assert report.ok, f"{module}: {report.violations}"


class TestS1NoBareExcept:
    BARE = "def f(q):\n    try:\n        q.pop()\n    except:\n        pass\n"

    def test_flags_bare_except_in_engine(self):
        report = run_lint(ENGINE, self.BARE)
        assert rules_hit(report) == {"S1"}

    def test_flags_bare_except_in_network(self):
        report = run_lint(NETWORK, self.BARE)
        assert rules_hit(report) == {"S1"}

    def test_typed_except_is_clean(self):
        source = ("def f(q):\n"
                  "    try:\n"
                  "        q.pop()\n"
                  "    except IndexError:\n"
                  "        pass\n")
        report = run_lint(ENGINE, source)
        assert report.ok

    def test_other_packages_not_in_scope(self):
        report = run_lint(MARKING, self.BARE)
        assert "S1" not in rules_hit(report)


class TestR1RegistryCompleteness:
    UNREGISTERED_ROUTER = (
        "from repro.routing.base import Router\n"
        "\n"
        "class ShinyRouter(Router):\n"
        "    def route(self, state):\n"
        "        return ()\n"
    )

    def test_flags_unregistered_router_subclass(self):
        report = run_lint("src/repro/routing/shiny.py", self.UNREGISTERED_ROUTER)
        assert rules_hit(report) == {"R1"}
        assert "ShinyRouter" in report.violations[0].message

    def test_factory_body_registration_counts(self):
        registryfile = (
            "from repro.registry import ROUTING\n"
            "\n"
            "def _make_shiny(rng):\n"
            "    from repro.routing.shiny import ShinyRouter\n"
            "    return ShinyRouter()\n"
            "\n"
            "ROUTING.register('shiny', _make_shiny)\n"
        )
        report = lint_sources([
            ("src/repro/routing/shiny.py", self.UNREGISTERED_ROUTER),
            ("src/repro/extra_registry.py", registryfile),
        ], select=["R1"])
        assert report.ok

    def test_abstract_subclass_is_exempt(self):
        source = ("import abc\n"
                  "from repro.routing.base import Router\n"
                  "\n"
                  "class PartialRouter(Router):\n"
                  "    @abc.abstractmethod\n"
                  "    def route(self, state):\n"
                  "        ...\n")
        report = run_lint("src/repro/routing/partial.py", source)
        assert report.ok

    def test_fault_spec_needs_serialization_pair(self):
        source = ("from repro.faults.campaign import FaultSpec\n"
                  "\n"
                  "class OddSpec(FaultSpec):\n"
                  "    def arm(self, injector):\n"
                  "        pass\n")
        report = lint_sources(
            [("src/repro/faults/odd.py", source)], select=["R1"])
        messages = " ".join(v.message for v in report.violations)
        assert "to_dict" in messages and "from_dict" in messages

    UNREGISTERED_ATTACK = (
        "from repro.attack.scenario import AttackSpec\n"
        "\n"
        "class NovelAttackSpec(AttackSpec):\n"
        "    kind = 'novel'\n"
        "    def arm(self, fabric, sim, victim, rng):\n"
        "        pass\n"
        "    def scaled(self, factor):\n"
        "        return self\n"
        "    def to_dict(self):\n"
        "        return {'kind': 'novel'}\n"
        "    @classmethod\n"
        "    def from_dict(cls, data):\n"
        "        return cls()\n"
    )

    def test_flags_unregistered_attack_spec(self):
        report = run_lint("src/repro/attack/novel.py", self.UNREGISTERED_ATTACK)
        assert rules_hit(report) == {"R1"}
        assert "NovelAttackSpec" in report.violations[0].message

    def test_attack_factory_registration_counts(self):
        registryfile = (
            "from repro.registry import ATTACKS\n"
            "\n"
            "def _make_novel(data):\n"
            "    from repro.attack.novel import NovelAttackSpec\n"
            "    return NovelAttackSpec.from_dict(data)\n"
            "\n"
            "ATTACKS.register('novel', _make_novel)\n"
        )
        report = lint_sources([
            ("src/repro/attack/novel.py", self.UNREGISTERED_ATTACK),
            ("src/repro/extra_registry.py", registryfile),
        ], select=["R1"])
        assert report.ok

    def test_attack_spec_needs_serialization_pair(self):
        source = ("from repro.attack.scenario import AttackSpec\n"
                  "\n"
                  "class BareAttackSpec(AttackSpec):\n"
                  "    kind = 'bare'\n"
                  "    def arm(self, fabric, sim, victim, rng):\n"
                  "        pass\n"
                  "    def scaled(self, factor):\n"
                  "        return self\n")
        report = lint_sources(
            [("src/repro/attack/bare.py", source)], select=["R1"])
        messages = " ".join(v.message for v in report.violations)
        assert "to_dict" in messages and "from_dict" in messages

    def test_underscore_attack_helper_is_exempt(self):
        source = ("from repro.attack.scenario import AttackSpec\n"
                  "\n"
                  "class _SharedAttackBase(AttackSpec):\n"
                  "    def to_dict(self):\n"
                  "        return {}\n"
                  "    @classmethod\n"
                  "    def from_dict(cls, data):\n"
                  "        return cls()\n")
        report = lint_sources(
            [("src/repro/attack/shared.py", source)], select=["R1"])
        assert report.ok

    def test_keyerror_near_registry_is_flagged(self):
        source = ("from repro import registry\n"
                  "\n"
                  "def pick(name, table):\n"
                  "    if name not in table:\n"
                  "        raise KeyError(name)\n"
                  "    return table[name]\n")
        report = run_lint("src/repro/util/pick.py", source)
        assert rules_hit(report) == {"R1"}
        assert "UnknownNameError" in report.violations[0].hint

    def test_keyerror_without_registry_reference_is_fine(self):
        source = ("def pick(name, table):\n"
                  "    if name not in table:\n"
                  "        raise KeyError(name)\n"
                  "    return table[name]\n")
        report = run_lint("src/repro/util/pick.py", source)
        assert report.ok


class TestSuppressions:
    def test_same_line_directive(self):
        report = run_lint(ENGINE,
                          "import time\n\ndef f():\n"
                          "    return time.time()  # repro-lint: disable=D1\n")
        assert report.ok
        assert report.suppressed == 1

    def test_own_line_directive_covers_next_line(self):
        report = run_lint(ENGINE,
                          "import time\n\ndef f():\n"
                          "    # repro-lint: disable=D1\n"
                          "    return time.time()\n")
        assert report.ok

    def test_disable_file_scope(self):
        report = run_lint(ENGINE,
                          "# repro-lint: disable-file=D1\n"
                          "import time\n\ndef f():\n"
                          "    return time.time()\n\n"
                          "def g():\n"
                          "    return time.monotonic()\n")
        assert report.ok
        assert report.suppressed == 2

    def test_disable_all(self):
        report = run_lint(ENGINE,
                          "import time\n\ndef f():\n"
                          "    return time.time()  # repro-lint: disable=all\n")
        assert report.ok

    def test_directive_only_hides_named_rule(self):
        source = ("import time, random\n\ndef f():\n"
                  "    return time.time() + random.random()"
                  "  # repro-lint: disable=D2\n")
        report = run_lint(ENGINE, source)
        assert rules_hit(report) == {"D1"}
        assert report.suppressed == 1

    def test_useless_directive_draws_w1(self):
        # A suppression that matches nothing is itself a finding: stale
        # directives would otherwise silently shadow future regressions.
        source = ("import time\n\ndef f():\n"
                  "    return 1  # repro-lint: disable=D2\n")
        report = run_lint(ENGINE, source)
        assert rules_hit(report) == {"W1"}

    def test_directive_in_docstring_is_inert(self):
        source = ('"""Docs mention # repro-lint: disable-file=all here."""\n'
                  "import time\n\ndef f():\n"
                  "    return time.time()\n")
        report = run_lint(ENGINE, source)
        assert rules_hit(report) == {"D1"}


class TestParseErrors:
    def test_syntax_error_reported_as_e1(self):
        report = run_lint(ENGINE, "def broken(:\n    pass\n")
        assert rules_hit(report) == {"E1"}
        assert report.violations[0].line >= 1

    def test_suppressions_still_parse_in_broken_file(self):
        report = run_lint(ENGINE,
                          "# repro-lint: disable-file=E1\n"
                          "def broken(:\n    pass\n")
        assert report.ok


class TestSelection:
    def test_select_restricts_rules(self):
        source = ("import time, random\n\ndef f():\n"
                  "    random.random()\n"
                  "    return time.time()\n")
        report = run_lint(ENGINE, source, select=["D2"])
        assert rules_hit(report) == {"D2"}

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ConfigurationError, match="unknown lint-rule 'Z9'"):
            run_lint(ENGINE, "x = 1\n", select=["Z9"])


class TestJsonRoundTrip:
    def test_report_dict_round_trips_through_violation(self):
        report = run_lint(ENGINE, "import time\n\ndef f():\n    return time.time()\n")
        data = json.loads(json.dumps(report.to_dict()))
        rebuilt = [Violation.from_dict(item) for item in data["violations"]]
        assert tuple(rebuilt) == report.violations
        assert data["ok"] is False
        assert data["files_checked"] == 1

    def test_cli_json_output_parses(self, tmp_path, capsys):
        target = tmp_path / "repro" / "engine"
        target.mkdir(parents=True)
        bad = target / "mod.py"
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        code = main([str(bad), "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 1
        assert data["ok"] is False
        violations = [Violation.from_dict(item) for item in data["violations"]]
        assert violations[0].rule == "D1"
        assert violations[0].path == str(bad)


class TestCli:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "ok.py"
        clean.write_text("def f():\n    return 1\n")
        assert main([str(clean)]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_violations_exit_one_with_location(self, tmp_path, capsys):
        target = tmp_path / "repro" / "engine"
        target.mkdir(parents=True)
        bad = target / "mod.py"
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:4:" in out
        assert "D1" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_unknown_select_exits_two(self, tmp_path, capsys):
        clean = tmp_path / "ok.py"
        clean.write_text("x = 1\n")
        assert main([str(clean), "--select", "Z9"]) == 2
        assert "unknown lint-rule" in capsys.readouterr().err

    def test_list_rules_names_every_rule(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("D1", "D2", "D3", "D4", "D5", "H1", "R1", "S1", "W1"):
            assert rule_id in out

    def test_collect_files_skips_caches(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        files = collect_files([str(tmp_path)])
        assert [f for f in files if "real.py" in f]
        assert not [f for f in files if "__pycache__" in f]
