"""Deliberately broken source fixtures for lint/sanitizer tests."""
