"""Deliberately broken simulation code — the two-layer detection fixture.

tests/test_sanitize_equivalence.py exercises this file both ways:

* **statically** — the file's source is linted under a pretend
  ``src/repro/attack/`` path, where rule D4 must flag the ad-hoc
  generator minted in :func:`jitter`;
* **dynamically** — the module body is executed under a ``repro.attack``
  module name and :func:`siphon` is handed a stream first drawn by
  marking-side code, which the :class:`repro.engine.sanitize.SimSanitizer`
  must reject as cross-package stream use.

Nothing in the library imports this module; it exists to stay broken.
"""

import numpy as np


def jitter() -> float:
    # BUG (D4): mints a private generator instead of drawing from a named
    # engine.rng stream, decoupling the result from the experiment seed.
    rng = np.random.default_rng(1234)
    return float(rng.random())


def siphon(stream) -> float:
    # BUG (sanitizer): draws from whatever stream it is handed — when that
    # stream belongs to another subsystem, this draw perturbs the owner's
    # sequence and breaks seed-for-seed reproducibility.
    return float(stream.random())
