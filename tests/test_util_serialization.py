"""Unit tests for repro.util.serialization."""

import numpy as np
import pytest

from repro.util.serialization import read_json, to_jsonable, write_csv, write_json


class TestToJsonable:
    def test_builtins_pass_through(self):
        assert to_jsonable({"a": 1, "b": [1.5, "x", None, True]}) == {
            "a": 1, "b": [1.5, "x", None, True]
        }

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(7)) == 7
        assert to_jsonable(np.float64(2.5)) == 2.5

    def test_numpy_arrays(self):
        assert to_jsonable(np.arange(3)) == [0, 1, 2]

    def test_tuples_and_sets_become_lists(self):
        assert to_jsonable((1, 2)) == [1, 2]
        assert sorted(to_jsonable({3, 1})) == [1, 3]

    def test_namedtuple_via_asdict(self):
        from collections import namedtuple

        Point = namedtuple("Point", "x y")
        assert to_jsonable(Point(1, 2)) == {"x": 1, "y": 2}


class TestJsonRoundtrip:
    def test_write_and_read(self, tmp_path):
        records = [{"k": 1, "v": [1, 2, 3]}]
        path = write_json(records, tmp_path / "out" / "r.json")
        assert read_json(path) == records


class TestCsv:
    def test_union_of_keys_in_order(self, tmp_path):
        rows = [{"a": 1}, {"b": 2, "a": 3}]
        path = write_csv(rows, tmp_path / "r.csv")
        text = path.read_text().splitlines()
        assert text[0] == "a,b"
        assert text[1] == "1,"
        assert text[2] == "3,2"

    def test_explicit_fieldnames(self, tmp_path):
        rows = [{"a": 1, "b": 2}]
        path = write_csv(rows, tmp_path / "r.csv", fieldnames=["b", "a"])
        assert path.read_text().splitlines()[0] == "b,a"
