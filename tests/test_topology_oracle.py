"""DistanceOracle correctness: exact equivalence with min_hops and live BFS.

The oracle is the hot-path replacement for per-hop ``Topology.min_hops``
calls (switch profitability, route walking), so its contract is strict
equality — every analytic formula and every cached BFS row must reproduce
the reference implementation on every pair, including after link failures.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import DistanceOracle, Hypercube, IrregularTopology, Mesh, Torus
from repro.topology.properties import bfs_distances


def _random_connected_graph(rng, num_nodes, extra_edges):
    """A random spanning tree plus ``extra_edges`` random chords."""
    nodes = list(range(num_nodes))
    rng.shuffle(nodes)
    edges = set()
    for i in range(1, num_nodes):
        u = nodes[rng.randrange(i)]
        v = nodes[i]
        edges.add((min(u, v), max(u, v)))
    target = min(num_nodes - 1 + extra_edges, num_nodes * (num_nodes - 1) // 2)
    while len(edges) < target:
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return IrregularTopology(num_nodes, sorted(edges))


class TestDefaultModeMatchesMinHops:
    """oracle.distance == topology.min_hops on every pair (the bit-identity
    requirement of the hot-path refactor)."""

    @pytest.mark.parametrize("topo", [
        Mesh((4, 4)), Mesh((3, 2, 4)), Mesh((7,)),
        Torus((4, 4)), Torus((5, 3)), Torus((3, 3, 3)),
        Hypercube(3), Hypercube(5),
    ], ids=repr)
    def test_regular_topologies_all_pairs(self, topo):
        oracle = topo.distance_oracle()
        for u in topo.nodes():
            for v in topo.nodes():
                assert oracle.distance(u, v) == topo.min_hops(u, v)

    def test_irregular_all_pairs(self):
        rng = random.Random(7)
        topo = _random_connected_graph(rng, 12, extra_edges=6)
        oracle = topo.distance_oracle()
        for u in topo.nodes():
            for v in topo.nodes():
                assert oracle.distance(u, v) == topo.min_hops(u, v)

    def test_min_hops_mode_ignores_failures(self):
        """min_hops is defined on the failure-free network; so is the oracle."""
        topo = Mesh((4, 4))
        oracle = topo.distance_oracle()
        before = oracle.distance(0, 15)
        topo.fail_link(0, 1)
        assert oracle.distance(0, 15) == before == topo.min_hops(0, 15)
        topo.restore_link(0, 1)

    def test_shared_instance_is_cached_on_topology(self):
        topo = Torus((4, 4))
        assert topo.distance_oracle() is topo.distance_oracle()


class TestLiveMode:
    """live=True answers over live links only and tracks fail/restore."""

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_matches_live_bfs_on_irregular_with_failures(self, data):
        seed = data.draw(st.integers(0, 10**6), label="seed")
        num_nodes = data.draw(st.integers(5, 14), label="num_nodes")
        extra = data.draw(st.integers(0, 8), label="extra_edges")
        rng = random.Random(seed)
        topo = _random_connected_graph(rng, num_nodes, extra)
        oracle = DistanceOracle(topo, live=True)

        links = sorted(topo.links.all_links)
        n_fail = data.draw(st.integers(0, min(4, len(links))), label="n_fail")
        for u, v in rng.sample(links, n_fail):
            topo.fail_link(u, v)

        for u in topo.nodes():
            reference = bfs_distances(topo, u, include_failed=False)
            for v in topo.nodes():
                expected = reference.get(v, math.inf)
                assert oracle.distance(u, v) == expected, (
                    f"live distance {u}->{v} diverged from BFS after failing "
                    f"{n_fail} links (seed {seed})"
                )

    def test_invalidation_on_fail_and_restore(self):
        topo = Torus((4, 4))
        oracle = DistanceOracle(topo, live=True)
        base = oracle.distance(0, 2)
        assert base == topo.min_hops(0, 2) == 2

        # Failing a ring link forces the detour; the cached row must refresh.
        topo.fail_link(0, 1)
        detour = oracle.distance(0, 1)
        assert detour == 3  # around the 4-ring
        topo.restore_link(0, 1)
        assert oracle.distance(0, 1) == 1

    def test_partition_reports_inf(self):
        topo = IrregularTopology(4, [(0, 1), (1, 2), (2, 3)])
        oracle = DistanceOracle(topo, live=True)
        assert oracle.distance(0, 3) == 3
        topo.fail_link(1, 2)
        assert oracle.distance(0, 3) == math.inf
        assert oracle.distance(0, 1) == 1
        topo.restore_link(1, 2)
        assert oracle.distance(0, 3) == 3

    def test_explicit_invalidate_refreshes(self):
        topo = Mesh((3, 3))
        oracle = DistanceOracle(topo, live=True)
        assert oracle.distance(0, 8) == 4
        oracle.invalidate()
        assert oracle.distance(0, 8) == 4
