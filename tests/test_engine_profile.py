"""Opt-in event profiler: attribution, accounting, and report rendering."""

import pytest

from repro.engine.profile import EventProfiler, ProfileEntry
from repro.engine.simulator import Simulator


def _noop():
    """Inert event callback (module-level: schedule_call takes no closures)."""


class TestRecording:
    def test_records_every_executed_event(self):
        profiler = EventProfiler()
        sim = Simulator(profile=profiler)
        hits = []
        sim.schedule_call(1.0, hits.append, "a", label="tick")
        sim.schedule_call(2.0, hits.append, "b", label="tick")
        sim.schedule(3.0, lambda: hits.append("c"), label="other")
        sim.run()
        assert hits == ["a", "b", "c"]
        assert profiler.events_recorded == 3 == sim.events_executed

    def test_buckets_by_label_and_callsite(self):
        profiler = EventProfiler()
        sim = Simulator(profile=profiler)
        sink = []
        sim.schedule_call(1.0, sink.append, 1, label="fast")
        sim.schedule_call(2.0, sink.append, 2, label="fast")
        sim.schedule_call(3.0, sink.append, 3, label="slow")
        sim.run()
        entries = {(e.label, e.count) for e in profiler.entries()}
        assert ("fast", 2) in entries
        assert ("slow", 1) in entries
        for entry in profiler.entries():
            assert isinstance(entry, ProfileEntry)
            assert entry.total_time >= 0.0
            assert entry.callsite  # qualname of list.append

    def test_disabled_simulator_records_nothing(self):
        sim = Simulator()
        sim.schedule_call(1.0, _noop)
        sim.run()
        assert sim.profile is None

    def test_step_path_also_records(self):
        profiler = EventProfiler()
        sim = Simulator(profile=profiler)
        sink = []
        sim.schedule_call(1.0, sink.append, "x", label="stepped")
        assert sim.step() is True
        assert sink == ["x"]
        assert profiler.events_recorded == 1
        assert profiler.entries()[0].label == "stepped"


class TestReporting:
    def _profiled_sim(self):
        profiler = EventProfiler()
        sim = Simulator(profile=profiler)
        sink = []
        for i in range(5):
            sim.schedule_call(float(i + 1), sink.append, i, label="work")
        sim.run()
        return profiler

    def test_top_orders_by_cumulative_time(self):
        profiler = self._profiled_sim()
        entries = profiler.top(10)
        totals = [e.total_time for e in entries]
        assert totals == sorted(totals, reverse=True)

    def test_mean_time(self):
        entry = ProfileEntry("l", "c", 4, 2.0)
        assert entry.mean_time == pytest.approx(0.5)
        assert ProfileEntry("l", "c", 0, 0.0).mean_time == 0.0

    def test_as_dict_is_json_shaped(self):
        profiler = self._profiled_sim()
        summary = profiler.as_dict()
        assert summary
        for key, stats in summary.items():
            assert "@" in key
            assert set(stats) == {"count", "total_time", "mean_time"}

    def test_report_renders_header_and_rows(self):
        profiler = self._profiled_sim()
        text = profiler.report(top=3)
        assert "event profile: 5 events" in text
        assert "work" in text

    def test_reset_drops_samples(self):
        profiler = self._profiled_sim()
        assert profiler.total_time >= 0.0
        profiler.reset()
        assert profiler.events_recorded == 0
        assert profiler.entries() == []
