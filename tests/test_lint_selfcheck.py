"""The repo passes its own linter: src and tests are violation-free."""

from pathlib import Path

from repro.lint import lint_paths, rule_classes

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestSelfCheck:
    def test_src_and_tests_are_clean(self):
        report = lint_paths([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
        assert report.ok, "\n" + "\n".join(v.format() for v in report.violations)
        assert report.files_checked > 100  # the whole tree, not a subset

    def test_rule_table_is_complete(self):
        ids = [cls.rule_id for cls in rule_classes()]
        assert ids == ["D1", "D2", "D3", "D4", "D5",
                       "H1", "H2", "H3", "R1", "S1", "W1"]
        for cls in rule_classes():
            assert cls.name and cls.description and cls.hint
