"""Unit tests for Savage's compressed-fragment PPM."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FieldLayoutError, MarkingError
from repro.marking.ppm_fragment import (
    FragmentEncoder,
    FragmentPpmScheme,
    FragmentVictimAnalysis,
)
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import DimensionOrderRouter, MinimalAdaptiveRouter, RandomPolicy, walk_route
from repro.topology import Mesh


def make_scheme(topology, probability=0.3, seed=0, **enc_kwargs):
    scheme = FragmentPpmScheme(probability, np.random.default_rng(seed),
                               encoder=FragmentEncoder(**enc_kwargs))
    scheme.attach(topology)
    return scheme


def run_flow(scheme, topology, src, dst, count, analysis=None, router=None,
             select=None):
    router = router if router is not None else DimensionOrderRouter()
    select = select if select is not None else (lambda c, cur: c[0])
    analysis = analysis if analysis is not None else scheme.new_victim_analysis(dst)
    for _ in range(count):
        path = walk_route(topology, router, src, dst, select)
        packet = Packet(IPHeader(1, 2), src, dst)
        scheme.on_inject(packet, src)
        for u, v in zip(path[:-1], path[1:]):
            scheme.on_hop(packet, u, v)
        analysis.observe(packet)
    return analysis


class TestEncoder:
    def test_geometry_fits_large_networks(self):
        # Full-index PPM dies at 8x8; fragments must handle 32x32.
        enc = FragmentEncoder(num_fragments=8, check_bits=12)
        enc.attach(Mesh((32, 32)))
        assert enc.layout.used_bits <= 16

    def test_fragments_reassemble_to_edge(self, mesh44):
        enc = FragmentEncoder(num_fragments=4, check_bits=8)
        enc.attach(mesh44)
        word = enc.edge_word(0, 1)
        fragments = tuple(enc.fragment_of(word, o) for o in range(4))
        assert enc.reassemble(fragments) == (0, 1)

    def test_corrupt_fragment_fails_checksum(self, mesh44):
        enc = FragmentEncoder(num_fragments=4, check_bits=8)
        enc.attach(mesh44)
        word = enc.edge_word(0, 1)
        fragments = [enc.fragment_of(word, o) for o in range(4)]
        fragments[2] ^= 1
        assert enc.reassemble(tuple(fragments)) is None

    def test_non_physical_edge_rejected(self, mesh44):
        enc = FragmentEncoder(num_fragments=4, check_bits=8)
        enc.attach(mesh44)
        # Forge a word for a non-adjacent pair with a valid checksum.
        from repro.marking.ppm_encoding import gray_label
        from repro.util.hashing import hash_bits

        edge = (gray_label(mesh44, 0) << enc.label_bits) | gray_label(mesh44, 5)
        word = (edge << enc.check_bits) | hash_bits(edge, enc.check_bits)
        fragments = tuple(enc.fragment_of(word, o) for o in range(4))
        assert enc.reassemble(fragments) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FragmentEncoder(num_fragments=1)
        with pytest.raises(ConfigurationError):
            FragmentEncoder(check_bits=0)

    def test_impossible_layout_rejected(self):
        enc = FragmentEncoder(num_fragments=2, check_bits=32)
        with pytest.raises(FieldLayoutError):
            enc.attach(Mesh((8, 8)))


class TestEndToEnd:
    def test_single_path_reconstructs(self, mesh44):
        scheme = make_scheme(mesh44, probability=0.3, seed=1,
                             num_fragments=4, check_bits=8)
        analysis = run_flow(scheme, mesh44, 0, 15, 3000)
        assert analysis.suspects() == frozenset({0})
        assert not analysis.truncated

    def test_needs_far_more_packets_than_full_index(self, mesh44):
        # With the same budget that full-index converges on, fragments have
        # not yet assembled every edge.
        scheme = make_scheme(mesh44, probability=0.3, seed=2,
                             num_fragments=4, check_bits=8)
        analysis = run_flow(scheme, mesh44, 0, 15, 60)
        assert analysis.suspects() != frozenset({0})

    def test_truncation_flag_on_combinatorial_blowup(self, mesh44):
        scheme = make_scheme(mesh44, probability=0.5, seed=3,
                             num_fragments=4, check_bits=8)
        analysis = scheme.new_victim_analysis(15)
        analysis.max_combinations = 1
        rng = np.random.default_rng(4)
        for src in (0, 3, 12, 5):
            run_flow(scheme, mesh44, src, 15, 200, analysis=analysis,
                     router=MinimalAdaptiveRouter(),
                     select=RandomPolicy(rng).binder())
        analysis.reassembled_edges()
        assert analysis.truncated

    def test_per_hop_operations_reported(self, mesh44):
        scheme = make_scheme(mesh44)
        ops = scheme.per_hop_operations()
        assert "rng_draw" in ops and "hash" in ops
