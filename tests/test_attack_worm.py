"""Unit tests for worm propagation (second-generation DDoS)."""

import numpy as np
import pytest

from repro.attack.worm import WormOutbreak, analytic_si_curve
from repro.errors import ConfigurationError
from repro.network import Fabric
from repro.routing import DimensionOrderRouter
from repro.topology import Hypercube, Mesh


def make_outbreak(topology=None, seed=0, **kwargs):
    fab = Fabric(topology if topology is not None else Mesh((4, 4)),
                 DimensionOrderRouter())
    defaults = dict(seeds=(0,), scan_rate=5.0,
                    rng=np.random.default_rng(seed), horizon=30.0)
    defaults.update(kwargs)
    return fab, WormOutbreak(fab, **defaults)


class TestAnalyticCurve:
    def test_logistic_shape(self):
        times = np.linspace(0, 20, 50)
        curve = analytic_si_curve(100, 1, 1.0, times)
        assert curve[0] == pytest.approx(1.0, abs=0.1)
        assert curve[-1] == pytest.approx(100.0, abs=1.0)
        assert np.all(np.diff(curve) >= 0)  # monotone growth

    def test_half_population_at_inflection(self):
        # Inflection of the logistic at t* = ln((N - I0)/I0)/beta.
        n, i0, beta = 64, 1, 0.8
        t_star = np.log((n - i0) / i0) / beta
        curve = analytic_si_curve(n, i0, beta, np.array([t_star]))
        assert curve[0] == pytest.approx(n / 2, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            analytic_si_curve(10, 0, 1.0, np.array([0.0]))


class TestOutbreak:
    def test_infection_spreads(self):
        fab, worm = make_outbreak()
        fab.run_until(30.0)
        assert worm.infected_count > 1
        assert worm.scans_sent > 0

    def test_full_saturation_given_time(self):
        fab, worm = make_outbreak(seed=1, scan_rate=20.0, horizon=60.0)
        fab.run_until(60.0)
        assert worm.infected_count == fab.topology.num_nodes

    def test_growth_tracks_logistic_roughly(self):
        """Simulated half-infection time tracks the analytic SI inflection.

        Four seed nodes damp early branching-process variance; a slow scan
        rate keeps network latency negligible against the epidemic
        timescale. Tolerance is still generous — the ODE ignores both.
        """
        topology = Hypercube(5)  # 32 nodes
        seeds = (0, 1, 2, 3)
        fab, worm = make_outbreak(topology=topology, seed=2, scan_rate=1.0,
                                  seeds=seeds, horizon=60.0)
        fab.run_until(60.0)
        times, counts = worm.curve.arrays()
        half_idx = np.searchsorted(counts, topology.num_nodes / 2)
        assert half_idx < len(times)
        t_half_sim = times[half_idx]
        beta = worm.effective_contact_rate()
        n, i0 = topology.num_nodes, len(seeds)
        t_half_ana = np.log((n - i0) / i0) / beta
        assert t_half_sim == pytest.approx(t_half_ana, rel=1.0)

    def test_infection_probability_slows_spread(self):
        fab_fast, worm_fast = make_outbreak(seed=3, scan_rate=10.0,
                                            infection_probability=1.0,
                                            horizon=8.0)
        fab_slow, worm_slow = make_outbreak(seed=3, scan_rate=10.0,
                                            infection_probability=0.1,
                                            horizon=8.0)
        fab_fast.run_until(8.0)
        fab_slow.run_until(8.0)
        assert worm_fast.infected_count > worm_slow.infected_count

    def test_sir_recovery_caps_epidemic(self):
        fab, worm = make_outbreak(seed=4, scan_rate=2.0, recovery_rate=4.0,
                                  horizon=40.0)
        fab.run_until(40.0)
        # Recovery far faster than spread: the outbreak dies out early.
        assert worm.infected_count + len(worm.recovered) < fab.topology.num_nodes

    def test_recovered_nodes_immune(self):
        fab, worm = make_outbreak(seed=5)
        worm._recover(0)
        assert 0 in worm.recovered
        worm._infect(0, at_time=1.0)
        assert 0 not in worm.infected

    def test_validation(self):
        fab = Fabric(Mesh((4, 4)), DimensionOrderRouter())
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            WormOutbreak(fab, seeds=(), scan_rate=1.0, rng=rng)
        with pytest.raises(ConfigurationError):
            WormOutbreak(fab, seeds=(0,), scan_rate=0.0, rng=rng)
        with pytest.raises(ConfigurationError):
            WormOutbreak(fab, seeds=(0,), scan_rate=1.0, rng=rng,
                         infection_probability=0.0)
