"""Unit tests for background traffic patterns."""

import numpy as np
import pytest

from repro.attack.traffic import (
    BitReversalPattern,
    HotspotPattern,
    PermutationPattern,
    TornadoPattern,
    TransposePattern,
    UniformRandomPattern,
    schedule_background,
)
from repro.errors import ConfigurationError
from repro.network import Fabric
from repro.routing import DimensionOrderRouter
from repro.topology import Hypercube, Mesh, Torus


class TestUniform:
    def test_never_self(self, mesh44, rng):
        pattern = UniformRandomPattern()
        for src in mesh44.nodes():
            for _ in range(20):
                assert pattern.destination(src, mesh44, rng) != src

    def test_covers_all_destinations(self, mesh44, rng):
        pattern = UniformRandomPattern()
        seen = {pattern.destination(0, mesh44, rng) for _ in range(500)}
        assert seen == set(range(1, 16))


class TestTranspose:
    def test_reverses_coordinates(self, mesh44, rng):
        pattern = TransposePattern()
        src = mesh44.index((1, 3))
        assert mesh44.coord(pattern.destination(src, mesh44, rng)) == (3, 1)

    def test_diagonal_falls_back_to_uniform(self, mesh44, rng):
        pattern = TransposePattern()
        src = mesh44.index((2, 2))
        assert pattern.destination(src, mesh44, rng) != src

    def test_requires_palindromic_dims(self, rng):
        with pytest.raises(ConfigurationError):
            TransposePattern().destination(0, Mesh((2, 3)), rng)


class TestBitReversal:
    def test_reverses_index_bits(self, cube4, rng):
        pattern = BitReversalPattern()
        assert pattern.destination(0b0001, cube4, rng) == 0b1000
        assert pattern.destination(0b0011, cube4, rng) == 0b1100

    def test_palindromic_index_falls_back(self, cube4, rng):
        pattern = BitReversalPattern()
        assert pattern.destination(0b1001, cube4, rng) != 0b1001

    def test_requires_power_of_two(self, rng):
        with pytest.raises(ConfigurationError):
            BitReversalPattern().destination(0, Mesh((3, 3)), rng)


class TestTornado:
    def test_halfway_around_first_dimension(self, rng):
        torus = Torus((8, 8))
        pattern = TornadoPattern()
        src = torus.index((1, 2))
        assert torus.coord(pattern.destination(src, torus, rng)) == (5, 2)


class TestHotspot:
    def test_hot_node_receives_configured_fraction(self, mesh44):
        rng = np.random.default_rng(0)
        pattern = HotspotPattern(hot_node=5, fraction=0.5)
        hits = sum(1 for _ in range(2000)
                   if pattern.destination(0, mesh44, rng) == 5)
        assert 800 < hits < 1200

    def test_hot_node_itself_sends_elsewhere(self, mesh44):
        rng = np.random.default_rng(0)
        pattern = HotspotPattern(hot_node=5, fraction=1.0)
        assert pattern.destination(5, mesh44, rng) != 5


class TestPermutation:
    def test_fixed_points_displaced(self, mesh44):
        rng = np.random.default_rng(0)
        pattern = PermutationPattern(mesh44, rng)
        for src in mesh44.nodes():
            assert pattern.destination(src, mesh44, rng) != src

    def test_stable_across_calls(self, mesh44):
        rng = np.random.default_rng(0)
        pattern = PermutationPattern(mesh44, rng)
        first = [pattern.destination(s, mesh44, rng) for s in mesh44.nodes()]
        second = [pattern.destination(s, mesh44, rng) for s in mesh44.nodes()]
        assert first == second


class TestScheduleBackground:
    def test_packet_count_near_expectation(self, rng):
        fab = Fabric(Mesh((4, 4)), DimensionOrderRouter())
        packets = schedule_background(fab, UniformRandomPattern(), rate=10.0,
                                      duration=5.0, rng=rng)
        # 16 sources * 10 pkt/s * 5 s = 800 expected.
        assert 600 < len(packets) < 1000

    def test_all_delivered(self, rng):
        fab = Fabric(Mesh((4, 4)), DimensionOrderRouter())
        packets = schedule_background(fab, UniformRandomPattern(), rate=2.0,
                                      duration=2.0, rng=rng)
        fab.run()
        assert fab.counters["delivered"] == len(packets)

    def test_sources_restriction(self, rng):
        fab = Fabric(Mesh((4, 4)), DimensionOrderRouter())
        packets = schedule_background(fab, UniformRandomPattern(), rate=5.0,
                                      duration=2.0, rng=rng, sources=[0, 1])
        assert {p.true_source for p in packets} <= {0, 1}

    def test_rate_validated(self, rng):
        fab = Fabric(Mesh((4, 4)), DimensionOrderRouter())
        with pytest.raises(ConfigurationError):
            schedule_background(fab, UniformRandomPattern(), rate=0.0,
                                duration=1.0, rng=rng)
