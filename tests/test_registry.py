"""Unit tests for the string -> factory registries."""

import numpy as np
import pytest

from repro import cli, registry
from repro.core.config import MarkingSpec, RoutingSpec, SelectionSpec, TopologySpec
from repro.errors import ConfigurationError
from repro.marking.base import MarkingScheme
from repro.routing.base import Router
from repro.routing.selection import SelectionPolicy
from repro.topology.base import Topology


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestRegistryMechanics:
    def test_register_create_names(self):
        reg = registry.Registry("widget")
        reg.register("a", lambda: "made-a")
        assert reg.create("a") == "made-a"
        assert reg.names() == ("a",)
        assert "a" in reg and "b" not in reg
        assert len(reg) == 1 and list(reg) == ["a"]

    def test_decorator_form(self):
        reg = registry.Registry("widget")

        @reg.register("fancy")
        def make_fancy():
            return "fancy!"

        assert reg.create("fancy") == "fancy!"
        assert make_fancy() == "fancy!"   # decorator returns the factory

    def test_duplicate_rejected(self):
        reg = registry.Registry("widget")
        reg.register("a", lambda: 1)
        with pytest.raises(ConfigurationError):
            reg.register("a", lambda: 2)

    def test_bad_name_rejected(self):
        reg = registry.Registry("widget")
        with pytest.raises(ConfigurationError):
            reg.register("", lambda: 1)
        with pytest.raises(ConfigurationError):
            reg.register(3, lambda: 1)

    def test_unknown_create_lists_known(self):
        reg = registry.Registry("widget")
        reg.register("a", lambda: 1)
        with pytest.raises(ConfigurationError, match="known: a"):
            reg.create("b")

    def test_unregister(self):
        reg = registry.Registry("widget")
        reg.register("a", lambda: 1)
        reg.unregister("a")
        assert "a" not in reg
        with pytest.raises(ConfigurationError):
            reg.unregister("a")


class TestBuiltinCoverage:
    """Every name the CLI exposes builds through spec -> registry."""

    @pytest.mark.parametrize("name", cli.ROUTING_CHOICES)
    def test_every_cli_routing_builds(self, name, rng):
        router = RoutingSpec(name).build(rng)
        assert isinstance(router, Router)

    @pytest.mark.parametrize("name", cli.MARKING_CHOICES)
    def test_every_cli_marking_builds(self, name, rng):
        from repro.topology import Mesh

        scheme = MarkingSpec(name, probability=0.1).build(rng, Mesh((4, 4)))
        assert isinstance(scheme, MarkingScheme)

    @pytest.mark.parametrize("name", cli.TOPOLOGY_CHOICES)
    def test_every_cli_topology_builds(self, name):
        dims = (3,) if name == "hypercube" else (4, 4)
        assert isinstance(TopologySpec(name, dims).build(), Topology)

    def test_cli_choices_track_registry(self):
        assert set(cli.ROUTING_CHOICES) == set(registry.ROUTING.names())
        assert set(cli.MARKING_CHOICES) == set(registry.MARKING.names()) - {"none"}
        assert set(cli.TOPOLOGY_CHOICES) == set(registry.TOPOLOGY.names())

    @pytest.mark.parametrize("name", ["first", "random", "least-congested"])
    def test_selection_names_registered(self, name):
        assert name in registry.SELECTION

    def test_selection_builds(self, rng):
        assert isinstance(SelectionSpec("first").build(rng), SelectionPolicy)
        assert isinstance(SelectionSpec("random").build(rng), SelectionPolicy)

    def test_marking_none_builds_none(self, rng):
        assert registry.MARKING.create("none", rng, None, 0.0) is None

    @pytest.mark.parametrize("name", cli.ROUTING_CHOICES)
    def test_roundtrip_every_routing_name(self, name):
        spec = RoutingSpec.from_dict(RoutingSpec(name).to_dict())
        assert spec.name == name

    @pytest.mark.parametrize("name", cli.MARKING_CHOICES)
    def test_roundtrip_every_marking_name(self, name):
        spec = MarkingSpec.from_dict(MarkingSpec(name, probability=0.3).to_dict())
        assert spec.name == name and spec.probability == 0.3


class TestExtensibility:
    def test_registered_scheme_reaches_config_build(self, rng):
        """One registration point: a new marking name becomes buildable
        from a MarkingSpec with no dispatch edits."""
        from repro.marking.ddpm import DdpmScheme

        registry.MARKING.register("test-ddpm-alias",
                                  lambda rng, topology, probability: DdpmScheme())
        try:
            scheme = MarkingSpec("test-ddpm-alias").build(rng)
            assert isinstance(scheme, DdpmScheme)
        finally:
            registry.MARKING.unregister("test-ddpm-alias")

    def test_deterministic_routing_set(self):
        assert registry.DETERMINISTIC_ROUTING == {"xy", "dor"}
        assert not RoutingSpec("xy").is_adaptive
        assert RoutingSpec("valiant").is_adaptive
