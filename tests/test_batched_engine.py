"""Unit tests for the batched cohort-advance engine and its plumbing.

The statistical-equivalence matrix lives in
``test_properties_batched_equivalence.py``; this file covers the engine's
mechanics: conservation accounting, the supported-feature guards, config
round-tripping (and cache-key stability for exact-mode configs), the CLI
surface, profiler integration, bulk injection, and the legacy
``launch_attack`` deprecation funnel.
"""

import json
import warnings

import numpy as np
import pytest

from repro.core.cluster import Cluster, ENGINES
from repro.core.config import (ExperimentConfig, MarkingSpec, RoutingSpec,
                               SelectionSpec, TopologySpec)
from repro.core.experiment import run_identification_experiment
from repro.errors import ConfigurationError
from repro.marking import DdpmScheme
from repro.network.colqueue import BatchedFabric, InjectionLog
from repro.network.fabric import Fabric, FabricConfig
from repro.network.packet import Packet, allocate_packet_ids
from repro.routing import DimensionOrderRouter, MinimalAdaptiveRouter
from repro.routing.selection import FirstCandidatePolicy
from repro.topology import Mesh, Torus


def _noop():
    return None


def _batched_cluster(*, config=None, marking="ddpm", seed=0):
    scheme = DdpmScheme() if marking == "ddpm" else None
    cluster = Cluster(Mesh((4, 4)), DimensionOrderRouter(), marking=scheme,
                      config=config, seed=seed, engine="batched")
    cluster.fabric.selection = FirstCandidatePolicy()
    return cluster


def _base_config(**overrides):
    kwargs = dict(
        topology=TopologySpec("mesh", (4, 4)),
        routing=RoutingSpec("dor"),
        marking=MarkingSpec("ddpm"),
        selection=SelectionSpec("first"),
        seed=1, num_attackers=2, attack_rate_per_node=20.0,
        duration=0.5, background_rate=1.0,
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


# ----------------------------------------------------------------------
# Conservation and retirement accounting
# ----------------------------------------------------------------------
class TestConservation:
    def test_injected_equals_delivered_plus_dropped(self):
        cluster = _batched_cluster()
        cluster.launch_ddos(num_attackers=3, attack_rate_per_node=30.0,
                            duration=1.0, background_rate=2.0)
        cluster.run()
        counters = cluster.fabric.counters
        assert cluster.fabric.n_injected > 0
        assert cluster.fabric.n_injected == (counters["delivered"]
                                             + counters["dropped"])

    def test_ttl_expiry_matches_exact_engine(self):
        # A 3-hop TTL on a 4x4 mesh expires every long route identically in
        # both engines (deterministic routing: same packets, same paths).
        results = {}
        for engine in ENGINES:
            cluster = Cluster(Mesh((4, 4)), DimensionOrderRouter(),
                              marking=DdpmScheme(),
                              config=FabricConfig(default_ttl=3),
                              seed=2, engine=engine)
            cluster.fabric.selection = FirstCandidatePolicy()
            cluster.launch_ddos(num_attackers=3, attack_rate_per_node=20.0,
                                duration=1.0, background_rate=2.0)
            cluster.run()
            stats = cluster.fabric.stats_summary()
            results[engine] = (int(stats.get("delivered", 0)),
                               int(stats.get("dropped", 0)),
                               int(stats.get("dropped_ttl_expired", 0)))
        assert results["batched"] == results["exact"]
        assert results["batched"][2] > 0, "workload never expired a TTL"


# ----------------------------------------------------------------------
# Supported-feature guards
# ----------------------------------------------------------------------
class TestGuards:
    def test_fault_campaign_config_is_rejected(self):
        from repro.faults import FaultCampaign, RandomLinkFlapSpec

        config = _base_config(
            engine="batched",
            faults=FaultCampaign((RandomLinkFlapSpec(probability=0.2),)))
        with pytest.raises(ConfigurationError, match="fault campaigns"):
            run_identification_experiment(config)

    def test_pending_discrete_events_are_rejected(self):
        cluster = _batched_cluster()
        cluster.sim.schedule_call(0.5, _noop, label="stray")
        with pytest.raises(ConfigurationError, match="discrete event"):
            cluster.run()

    def test_per_packet_observation_apis_raise(self):
        fabric = _batched_cluster().fabric
        with pytest.raises(ConfigurationError, match="delivery handlers"):
            fabric.add_delivery_handler(0, lambda event: None)
        with pytest.raises(ConfigurationError, match="drop handlers"):
            fabric.add_drop_handler(lambda *a: None)
        with pytest.raises(ConfigurationError, match="transit observers"):
            fabric.add_transit_observer(0, lambda *a: None)

    def test_run_until_rejects_store_and_forward(self):
        from repro.network.flowcontrol import StoreAndForward

        fabric = BatchedFabric(Mesh((4, 4)), DimensionOrderRouter(),
                               marking=DdpmScheme(),
                               service=StoreAndForward())
        fabric.selection = FirstCandidatePolicy()
        with pytest.raises(ConfigurationError, match="run_until"):
            fabric.run_until(1.0)

    def test_injection_filter_is_rejected(self):
        cluster = _batched_cluster()
        cluster.fabric.injection_filter = lambda packet, node: True
        cluster.launch_ddos(num_attackers=2, attack_rate_per_node=10.0,
                            duration=0.5)
        with pytest.raises(ConfigurationError, match="hooks"):
            cluster.run()

    def test_unsupported_marking_scheme_is_rejected(self):
        from repro.marking import AuthenticatedDdpmScheme

        topo = Mesh((4, 4))
        keys = {n: n + 1 for n in topo.nodes()}
        cluster = Cluster(topo, DimensionOrderRouter(),
                          marking=AuthenticatedDdpmScheme(keys),
                          seed=0, engine="batched")
        cluster.launch_ddos(num_attackers=2, attack_rate_per_node=10.0,
                            duration=0.5)
        with pytest.raises(ConfigurationError):
            cluster.run()

    def test_unsupported_router_is_rejected(self):
        from repro.routing import ValiantRouter

        cluster = Cluster(Torus((4, 4)),
                          ValiantRouter(np.random.default_rng(0)),
                          marking=DdpmScheme(), seed=0, engine="batched")
        cluster.launch_ddos(num_attackers=2, attack_rate_per_node=10.0,
                            duration=0.5)
        with pytest.raises(ConfigurationError):
            cluster.run()

    def test_unknown_engine_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            Cluster(Mesh((4, 4)), DimensionOrderRouter(), engine="warp")


# ----------------------------------------------------------------------
# Config plumbing and cache-key stability
# ----------------------------------------------------------------------
class TestConfigPlumbing:
    def test_engine_round_trips(self):
        config = _base_config(engine="batched")
        data = config.to_dict()
        assert data["engine"] == "batched"
        assert ExperimentConfig.from_dict(data).engine == "batched"

    def test_exact_config_omits_engine_key(self):
        # Pre-batched configs must keep their canonical JSON (and therefore
        # result-cache keys) byte for byte.
        data = _base_config().to_dict()
        assert "engine" not in data
        assert ExperimentConfig.from_dict(data).engine == "exact"

    def test_canonical_json_unchanged_by_engine_field(self):
        exact = _base_config()
        assert "engine" not in json.loads(exact.canonical_json())

    def test_bad_engine_value_rejected(self):
        data = _base_config().to_dict()
        data["engine"] = "warp"
        with pytest.raises(ConfigurationError, match="engine"):
            ExperimentConfig.from_dict(data)

    def test_from_config_builds_batched_fabric(self):
        cluster = Cluster.from_config(_base_config(engine="batched"))
        assert isinstance(cluster.fabric, BatchedFabric)
        assert cluster.engine == "batched"
        exact = Cluster.from_config(_base_config())
        assert not isinstance(exact.fabric, BatchedFabric)

    def test_experiment_runs_end_to_end(self):
        result = run_identification_experiment(_base_config(engine="batched"))
        assert result.packets_delivered > 0
        assert result.score.recall == 1.0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_engine_flag_smoke(self, capsys):
        from repro.cli import main

        code = main(["experiment", "--topology", "mesh", "--dims", "4", "4",
                     "--routing", "dor", "--marking", "ddpm",
                     "--duration", "0.5", "--engine", "batched"])
        assert code == 0
        assert "packets_delivered" in capsys.readouterr().out

    def test_engine_default_is_exact(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["experiment", "--topology", "mesh", "--dims", "4", "4"])
        assert args.engine == "exact"


# ----------------------------------------------------------------------
# Profiler integration
# ----------------------------------------------------------------------
class TestProfiler:
    def test_cohort_counters_recorded(self):
        from repro.engine.profile import EventProfiler

        profiler = EventProfiler()
        config = _base_config(engine="batched")
        result = run_identification_experiment(config, profile=profiler)
        assert profiler.batch_advances > 0
        assert profiler.rows_advanced >= result.packets_delivered
        stats = profiler.advance_stats()
        assert stats["advances"] == profiler.batch_advances
        assert sum(stats["rows_histogram"].values()) == profiler.batch_advances
        assert "batch-advance@cohort" in profiler.as_dict()


# ----------------------------------------------------------------------
# Bulk injection plumbing
# ----------------------------------------------------------------------
class TestBulkInjection:
    def test_allocate_packet_ids_reserves_contiguous_block(self):
        start = allocate_packet_ids(5)
        from repro.network.ip import IPHeader

        packet = Packet(IPHeader(1, 2, ttl=8, total_length=84), 0, 1)
        assert packet.packet_id >= start + 5

    def test_allocate_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            allocate_packet_ids(-1)

    def test_injection_log_merges_scalar_and_bulk(self):
        log = InjectionLog()
        log.append(0.5, 1, 11, 2, 12, 84, 100)
        log.extend(np.array([0.25, 0.75]), np.array([3, 4]),
                   np.array([13, 14]), np.array([5, 6]),
                   np.array([15, 16]), np.array([84, 84]),
                   np.array([101, 102]))
        assert len(log) == 3
        columns = log.columns()
        assert columns["times"].tolist() == [0.25, 0.5, 0.75]
        assert columns["ids"].tolist() == [101, 100, 102]

    def test_injection_log_extend_length_mismatch(self):
        log = InjectionLog()
        with pytest.raises(ConfigurationError, match="length"):
            log.extend(np.array([0.1]), np.array([1, 2]), np.array([3]),
                       np.array([4]), np.array([5]), np.array([6]),
                       np.array([7]))

    def test_bulk_background_requires_batched_fabric(self):
        from repro.attack.traffic import (UniformRandomPattern,
                                          schedule_background_bulk)

        fabric = Fabric(Mesh((4, 4)), DimensionOrderRouter())
        with pytest.raises(ConfigurationError, match="batched"):
            schedule_background_bulk(fabric, UniformRandomPattern(),
                                     rate=5.0, duration=1.0,
                                     rng=np.random.default_rng(0))

    def test_bulk_background_runs_and_conserves(self):
        from repro.attack.traffic import (UniformRandomPattern,
                                          schedule_background_bulk)

        fabric = BatchedFabric(Mesh((4, 4)), MinimalAdaptiveRouter(),
                               marking=DdpmScheme())
        fabric.selection = FirstCandidatePolicy()
        ids = schedule_background_bulk(fabric, UniformRandomPattern(),
                                       rate=10.0, duration=1.0,
                                       rng=np.random.default_rng(3))
        fabric.run()
        assert fabric.n_injected == len(ids) > 0
        assert fabric.n_injected == (fabric.counters["delivered"]
                                     + fabric.counters["dropped"])


# ----------------------------------------------------------------------
# Legacy launch_attack deprecation funnel
# ----------------------------------------------------------------------
class TestLegacyLaunchAttackWarning:
    def _cluster(self):
        return Cluster(Mesh((4, 4)), DimensionOrderRouter(),
                       marking=DdpmScheme(), seed=0)

    def test_warns_exactly_once_per_call(self):
        cluster = self._cluster()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cluster.launch_attack(num_attackers=2, duration=0.5)
        relevant = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert len(relevant) == 1
        assert "AttackSpec" in str(relevant[0].message)

    def test_repeat_calls_warn_again(self):
        cluster = self._cluster()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cluster.launch_attack(num_attackers=2, duration=0.5)
            cluster.launch_attack(num_attackers=2, duration=0.5)
        relevant = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert len(relevant) == 2

    def test_spec_form_does_not_warn(self):
        from repro.attack.scenario import FloodAttackSpec

        cluster = self._cluster()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cluster.launch_attack(FloodAttackSpec(num_attackers=2,
                                                  duration=0.5))
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]


# ----------------------------------------------------------------------
# Partial-horizon advance: run_until on the batched engine
# ----------------------------------------------------------------------
class TestRunUntil:
    """run_until cuts one capture into segments at round boundaries.

    Correctness rests on the virtual-cut-through lag invariant (see
    ``CohortEngine.advance``): every live row's lag behind the frontier is
    fixed at activation, so rounds on either side of a cut never interleave
    in simulated time and a segmented run must reproduce the single-run
    results bit for bit.
    """

    def _arm(self, seed=4):
        cluster = _batched_cluster(seed=seed)
        victim = cluster.default_victim()
        batches = []
        cluster.fabric.attach_delivery_sink(
            victim,
            lambda batch: batches.append((np.asarray(batch.times).copy(),
                                          np.asarray(batch.sources).copy())))
        cluster.launch_ddos(victim=victim, num_attackers=3,
                            attack_rate_per_node=25.0, duration=1.0,
                            background_rate=2.0)
        return cluster, batches

    def _observables(self, cluster, batches):
        times = (np.concatenate([t for t, _ in batches])
                 if batches else np.empty(0))
        sources = (np.concatenate([s for _, s in batches])
                   if batches else np.empty(0))
        return (tuple(n.n_delivered for n in cluster.fabric.nics),
                int(cluster.fabric.counters["delivered"]),
                int(cluster.fabric.counters["dropped"]),
                cluster.sim.now,
                times.tolist(), sources.tolist())

    def test_segmented_run_is_bit_identical(self):
        full_cluster, full_batches = self._arm()
        full_cluster.run()
        full = self._observables(full_cluster, full_batches)

        seg_cluster, seg_batches = self._arm()
        now = seg_cluster.run(until=0.3)
        assert now >= 0.3
        mid_delivered = int(seg_cluster.fabric.counters["delivered"])
        assert 0 < mid_delivered < full[1], "cut did not split the run"
        seg_cluster.run(until=0.7)
        seg_cluster.run()
        assert self._observables(seg_cluster, seg_batches) == full

    def test_run_until_timeline_is_monotonic(self):
        cluster, _ = self._arm()
        t1 = cluster.run(until=0.2)
        t2 = cluster.run(until=0.5)
        t3 = cluster.run(until=0.5)  # idempotent horizon
        assert t1 <= t2 <= t3
        # A horizon in the past advances nothing further.
        assert cluster.run(until=0.1) == t3

    def test_injections_between_segments_are_folded_in(self):
        """New traffic captured after a cut (at later times) joins the
        pending set; capture at-or-before the consumed frontier refuses."""
        cluster, _ = self._arm()
        cluster.run(until=0.4)
        from repro.network.ip import IPHeader

        late = Packet(IPHeader(0, 5, ttl=8, total_length=84), 0, 5)
        cluster.fabric.inject(late, at_node=0, delay=0.0)
        # sim.now is past 0.4, so this injection lands after the frontier
        # and must be folded into the remaining run.
        cluster.run()
        baseline, _ = self._arm()
        baseline.run()
        assert cluster.fabric.n_injected == baseline.fabric.n_injected + 1

    def test_segmented_matches_exact_engine_end_state(self):
        """Segmenting must not change what the exact engine would compute:
        final delivered/dropped totals and per-node counts still match the
        per-packet reference (deterministic routing + marking)."""
        exact = Cluster(Mesh((4, 4)), DimensionOrderRouter(),
                        marking=DdpmScheme(), seed=4, engine="exact")
        exact.fabric.selection = FirstCandidatePolicy()
        exact.launch_ddos(victim=exact.default_victim(), num_attackers=3,
                          attack_rate_per_node=25.0, duration=1.0,
                          background_rate=2.0)
        exact.run()

        seg, _ = self._arm(seed=4)
        seg.run(until=0.25)
        seg.run(until=0.75)
        seg.run()
        assert (tuple(n.n_delivered for n in seg.fabric.nics)
                == tuple(n.n_delivered for n in exact.fabric.nics))
        assert (seg.fabric.counters["delivered"]
                == exact.fabric.counters["delivered"])
        assert (seg.fabric.counters["dropped"]
                == exact.fabric.counters["dropped"])

    def test_cluster_run_until_path(self):
        """Cluster.run(until=...) reaches the fabric's partial horizon."""
        cluster, batches = self._arm()
        cluster.run(until=0.5)
        assert batches, "no deliveries flushed at the first horizon"
