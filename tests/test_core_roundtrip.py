"""Canonical serialization round-trips for configs and results.

The cache key is a hash of ``ExperimentConfig.canonical_json()``, so these
round-trips are a correctness requirement, not a convenience: a field that
fails to round-trip (or to appear in the canonical form) would silently
alias distinct experiments onto one cache entry.
"""

import dataclasses
import json

import pytest

from repro.core.config import (
    ExperimentConfig,
    MarkingSpec,
    RoutingSpec,
    SelectionSpec,
    TopologySpec,
)
from repro.core.replication import replicate
from repro.core.results import ExperimentResult
from repro.errors import ConfigurationError


def make_config(**overrides):
    base = ExperimentConfig(
        topology=TopologySpec("mesh", (4, 4)),
        routing=RoutingSpec("minimal-adaptive"),
        marking=MarkingSpec("ddpm", probability=0.2),
        selection=SelectionSpec("random"),
        num_attackers=2, duration=1.0,
    )
    return dataclasses.replace(base, **overrides)


class TestConfigRoundTrip:
    def test_default_round_trip(self):
        config = make_config()
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_exotic_round_trip(self):
        config = make_config(
            topology=TopologySpec("hypercube", (4,)),
            routing=RoutingSpec("valiant"),
            marking=MarkingSpec("ppm-fragment", probability=0.33),
            selection=SelectionSpec("first"),
            seed=99, victim=3, attackers=(1, 5, 7),
            attack_rate_per_node=12.5, background_rate=0.0,
            duration=0.5, misroute_budget=2, trace_packets=True,
        )
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_json_safe(self):
        config = make_config(attackers=(1, 2))
        rebuilt = ExperimentConfig.from_dict(
            json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config

    def test_canonical_json_is_stable(self):
        a = make_config()
        b = ExperimentConfig.from_dict(a.to_dict())
        assert a.canonical_json() == b.canonical_json()

    def test_canonical_json_distinguishes_configs(self):
        a = make_config()
        assert a.canonical_json() != make_config(seed=1).canonical_json()
        assert (a.canonical_json()
                != make_config(marking=MarkingSpec("ddpm", probability=0.21))
                .canonical_json())

    def test_with_seed(self):
        assert make_config().with_seed(9).seed == 9
        assert make_config(seed=4).with_seed(4) == make_config(seed=4)

    def test_minimal_dict_uses_defaults(self):
        config = ExperimentConfig.from_dict({
            "topology": {"kind": "mesh", "dims": [4, 4]},
            "routing": {"name": "xy"},
            "marking": {"name": "ddpm"},
        })
        assert config.selection == SelectionSpec("random")
        assert config.seed == 0 and config.victim is None


class TestConfigValidation:
    def test_unknown_key_rejected(self):
        data = make_config().to_dict()
        data["warp_factor"] = 9
        with pytest.raises(ConfigurationError, match="warp_factor"):
            ExperimentConfig.from_dict(data)

    def test_missing_required_rejected(self):
        data = make_config().to_dict()
        del data["routing"]
        with pytest.raises(ConfigurationError, match="routing"):
            ExperimentConfig.from_dict(data)

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig.from_dict([1, 2, 3])

    def test_unknown_routing_name_rejected(self):
        data = make_config().to_dict()
        data["routing"] = {"name": "warp"}
        with pytest.raises(ConfigurationError, match="warp"):
            ExperimentConfig.from_dict(data)

    def test_unknown_marking_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MarkingSpec.from_dict({"name": "stamp"})

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            MarkingSpec.from_dict({"name": "ppm-full", "probability": 1.5})
        with pytest.raises(ConfigurationError):
            MarkingSpec.from_dict({"name": "ppm-full", "probability": "hi"})

    def test_bad_dims_rejected(self):
        for dims in ([], [0, 4], ["4", "4"], "44", [True, True]):
            with pytest.raises(ConfigurationError):
                TopologySpec.from_dict({"kind": "mesh", "dims": dims})

    def test_bad_scalars_rejected(self):
        for field, value in [("seed", "zero"), ("seed", True),
                             ("duration", "long"), ("trace_packets", 1),
                             ("victim", 1.5), ("attackers", [1, "x"]),
                             ("num_attackers", 2.5)]:
            data = make_config().to_dict()
            data[field] = value
            with pytest.raises(ConfigurationError):
                ExperimentConfig.from_dict(data)

    def test_spec_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            RoutingSpec.from_dict({"name": "xy", "speed": 11})


class TestResultRoundTrip:
    def test_result_round_trip_through_json(self):
        result = replicate(make_config(), seeds=[5])[0]
        rebuilt = ExperimentResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result
        assert rebuilt.to_record() == result.to_record()
        assert rebuilt.score.f1 == result.score.f1

    def test_extra_preserved(self):
        result = replicate(make_config(), seeds=[5])[0]
        result.extra["note"] = "hello"
        rebuilt = ExperimentResult.from_dict(result.to_dict())
        assert rebuilt.extra == {"note": "hello"}

    def test_malformed_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentResult.from_dict({"topology": "mesh"})
