"""Unit tests for BFS-based graph properties, cross-checked with networkx."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.topology import Hypercube, Mesh, Torus
from repro.topology.properties import (
    average_distance,
    bfs_distances,
    connected_components,
    count_minimal_paths,
    diameter,
    is_connected,
    shortest_path,
)


class TestBfs:
    def test_distances_match_networkx(self):
        mesh = Mesh((4, 4))
        ours = bfs_distances(mesh, 0)
        theirs = nx.single_source_shortest_path_length(mesh.to_networkx(), 0)
        assert ours == dict(theirs)

    def test_respects_failures(self):
        mesh = Mesh((1, 3))  # path graph 0-1-2
        mesh.fail_link(1, 2)
        assert bfs_distances(mesh, 0) == {0: 0, 1: 1}
        assert bfs_distances(mesh, 0, include_failed=True) == {0: 0, 1: 1, 2: 2}

    def test_bad_source(self):
        with pytest.raises(TopologyError):
            bfs_distances(Mesh((2, 2)), 99)


class TestShortestPath:
    def test_endpoints_and_length(self):
        mesh = Mesh((4, 4))
        path = shortest_path(mesh, 0, 15)
        assert path[0] == 0 and path[-1] == 15
        assert len(path) - 1 == mesh.min_hops(0, 15)

    def test_consecutive_nodes_adjacent(self):
        torus = Torus((4, 4))
        path = shortest_path(torus, 0, 10)
        for u, v in zip(path[:-1], path[1:]):
            assert torus.is_neighbor(u, v)

    def test_unreachable_returns_none(self):
        mesh = Mesh((1, 2))
        mesh.fail_link(0, 1)
        assert shortest_path(mesh, 0, 1) is None

    def test_trivial(self):
        assert shortest_path(Mesh((2, 2)), 3, 3) == [3]


class TestDiameterAverage:
    @pytest.mark.parametrize("topo_factory,expected", [
        (lambda: Mesh((4, 4)), 6),
        (lambda: Torus((4, 4)), 4),
        (lambda: Hypercube(4), 4),
    ])
    def test_diameter_analytic_vs_bfs(self, topo_factory, expected):
        topo = topo_factory()
        assert diameter(topo) == expected == topo.diameter()

    def test_average_distance_matches_networkx(self):
        mesh = Mesh((3, 3))
        ours = average_distance(mesh)
        theirs = nx.average_shortest_path_length(mesh.to_networkx())
        assert ours == pytest.approx(theirs)

    def test_disconnected_raises(self):
        mesh = Mesh((1, 2))
        mesh.fail_link(0, 1)
        with pytest.raises(TopologyError):
            diameter(mesh)


class TestConnectivity:
    def test_connected(self):
        assert is_connected(Mesh((4, 4)))

    def test_disconnection_detected(self):
        mesh = Mesh((1, 3))
        mesh.fail_link(1, 2)
        assert not is_connected(mesh)
        comps = connected_components(mesh)
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2]]


class TestMinimalPathCount:
    def test_mesh_binomial(self):
        # (0,0) -> (2,2) in a mesh: C(4,2) = 6 minimal paths.
        mesh = Mesh((3, 3))
        assert count_minimal_paths(mesh, mesh.index((0, 0)), mesh.index((2, 2))) == 6

    def test_hypercube_factorial(self):
        # 0 -> all-ones in an n-cube: n! minimal paths.
        cube = Hypercube(3)
        assert count_minimal_paths(cube, 0, 7) == 6

    def test_single_path_along_line(self):
        mesh = Mesh((1, 4))
        assert count_minimal_paths(mesh, 0, 3) == 1

    def test_unreachable_is_zero(self):
        mesh = Mesh((1, 2))
        mesh.fail_link(0, 1)
        assert count_minimal_paths(mesh, 0, 1) == 0
