"""Unit tests for multi-seed replication and CI summaries."""

import pytest

from repro.core import ExperimentConfig, MarkingSpec, RoutingSpec, SelectionSpec, TopologySpec
from repro.core.replication import MetricSummary, replicate, summarize_metric
from repro.errors import ConfigurationError


def config(marking="ddpm"):
    return ExperimentConfig(
        topology=TopologySpec("mesh", (4, 4)),
        routing=RoutingSpec("minimal-adaptive"),
        marking=MarkingSpec(marking, probability=0.2),
        selection=SelectionSpec("random"),
        num_attackers=2, duration=1.0,
    )


class TestReplicate:
    def test_one_result_per_seed(self):
        results = replicate(config(), seeds=[1, 2, 3])
        assert len(results) == 3
        assert [r.seed for r in results] == [1, 2, 3]

    def test_seeds_change_attacker_draw(self):
        results = replicate(config(), seeds=[1, 2, 3, 4])
        assert len({r.attackers for r in results}) > 1

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            replicate(config(), seeds=[])

    def test_same_seed_reproduces(self):
        a = replicate(config(), seeds=[7])[0]
        b = replicate(config(), seeds=[7])[0]
        assert a.attackers == b.attackers
        assert a.suspects == b.suspects


class TestSummaries:
    def test_ddpm_precision_degenerate_interval(self):
        results = replicate(config("ddpm"), seeds=range(4))
        summary = summarize_metric(results, "precision")
        assert summary.mean == 1.0
        assert summary.ci_low == summary.ci_high == 1.0
        assert summary.contains(1.0)

    def test_dpm_precision_below_one(self):
        results = replicate(config("dpm"), seeds=range(4))
        summary = summarize_metric(results, "precision")
        assert summary.mean < 1.0
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_unknown_metric_rejected(self):
        results = replicate(config(), seeds=[1, 2])
        with pytest.raises(ConfigurationError):
            summarize_metric(results, "vibes")

    def test_single_replication_rejected(self):
        results = replicate(config(), seeds=[1])
        with pytest.raises(ConfigurationError):
            summarize_metric(results, "precision")

    def test_unsupported_confidence_rejected(self):
        results = replicate(config(), seeds=[1, 2])
        with pytest.raises(ConfigurationError):
            summarize_metric(results, "precision", confidence=0.5)
