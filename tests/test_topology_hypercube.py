"""Unit tests for the hypercube topology."""

import pytest

from repro.errors import TopologyError
from repro.topology import Hypercube
from repro.topology.properties import bfs_distances, diameter
from repro.util.bitops import popcount


class TestConstruction:
    def test_node_count(self):
        assert Hypercube(3).num_nodes == 8
        assert Hypercube(5).num_nodes == 32

    def test_n_must_be_positive(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Hypercube(0)


class TestNeighbors:
    def test_degree_is_n_everywhere(self):
        cube = Hypercube(4)
        for node in cube.nodes():
            assert len(cube.neighbors(node)) == 4

    def test_neighbors_differ_in_one_bit(self):
        cube = Hypercube(4)
        for node in cube.nodes():
            for nb in cube.neighbors(node):
                assert popcount(node ^ nb) == 1

    def test_ordered_by_axis_msb_first(self):
        cube = Hypercube(3)
        # Axis 0 is the most significant bit (coordinate convention).
        assert cube.neighbors(0) == (0b100, 0b010, 0b001)

    def test_edge_count(self):
        # n-cube: n * 2^(n-1) links.
        assert len(Hypercube(4).to_edge_list()) == 4 * 8


class TestMetrics:
    def test_paper_degree_and_diameter(self):
        # Paper: "Its degree and diameter is n."
        for n in (3, 4, 5):
            cube = Hypercube(n)
            assert cube.degree() == n
            assert cube.diameter() == n

    def test_diameter_matches_bfs(self):
        assert Hypercube(4).diameter() == diameter(Hypercube(4))

    def test_min_hops_is_hamming(self):
        cube = Hypercube(4)
        dist = bfs_distances(cube, 0b0110)
        for node, d in dist.items():
            assert cube.min_hops(0b0110, node) == d == popcount(0b0110 ^ node)


class TestBitHelpers:
    def test_bit_of(self):
        cube = Hypercube(3)
        assert cube.bit_of(0b101, 0) == 1
        assert cube.bit_of(0b101, 1) == 0
        assert cube.bit_of(0b101, 2) == 1

    def test_bit_of_bad_axis(self):
        with pytest.raises(TopologyError):
            Hypercube(3).bit_of(0, 3)

    def test_step_toggles_bit_regardless_of_direction(self):
        cube = Hypercube(3)
        assert cube.step(0b000, 0, 1) == 0b100
        assert cube.step(0b000, 0, -1) == 0b100
        assert cube.step(0b100, 2, 1) == 0b101


class TestOffsetAlgebra:
    def test_distance_vector_is_xor_bits(self):
        cube = Hypercube(3)
        assert cube.distance_vector(0b110, 0b000) == (1, 1, 0)

    def test_hop_delta_one_hot(self):
        cube = Hypercube(3)
        assert cube.hop_delta(0b110, 0b010) == (1, 0, 0)
        with pytest.raises(TopologyError):
            cube.hop_delta(0b110, 0b000)

    def test_combine_is_xor(self):
        cube = Hypercube(3)
        assert cube.combine_offsets((1, 0, 1), (1, 1, 0)) == (0, 1, 1)

    def test_resolve_source_all_pairs(self):
        cube = Hypercube(4)
        for src in cube.nodes():
            for dst in cube.nodes():
                v = cube.distance_vector(src, dst)
                assert cube.resolve_source(dst, v) == src

    def test_resolve_rejects_non_bits(self):
        with pytest.raises(TopologyError):
            Hypercube(3).resolve_source(0, (2, 0, 0))


class TestPaperWalkthrough:
    def test_figure3c_vector_sequence(self):
        """Paper §5: 3-cube walk with vector evolution (1,0,0),(1,0,1),
        (0,0,1),(0,1,1),(0,1,0),(1,1,0), then S = D XOR V = (1,1,0)."""
        cube = Hypercube(3)
        src = cube.index((1, 1, 0))
        deltas = [(1, 0, 0), (0, 0, 1), (1, 0, 0), (0, 1, 0), (0, 0, 1), (1, 0, 0)]
        expected = [(1, 0, 0), (1, 0, 1), (0, 0, 1), (0, 1, 1), (0, 1, 0), (1, 1, 0)]
        v = cube.identity_offset()
        node = src
        seen = []
        for delta in deltas:
            axis = delta.index(1)
            nxt = cube.step(node, axis, 1)
            v = cube.combine_offsets(v, cube.hop_delta(node, nxt))
            seen.append(v)
            node = nxt
        assert seen == expected
        assert node == cube.index((0, 0, 0))
        assert cube.resolve_source(node, v) == src
