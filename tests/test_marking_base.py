"""Unit tests for the marking-scheme base interfaces and error hierarchy."""

import pytest

import repro.errors as errors
from repro.errors import MarkingError, ReproError
from repro.marking.base import MarkingScheme, VictimAnalysis
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.topology import Mesh


class NullScheme(MarkingScheme):
    """Minimal concrete scheme for exercising the base class."""

    name = "null"

    def on_hop(self, packet, from_node, to_node):
        """No-op hop."""

    def new_victim_analysis(self, victim):
        """Counting-only analysis."""
        return CountingAnalysis(victim)


class CountingAnalysis(VictimAnalysis):
    """Accumulates nothing but the base counter."""

    def _observe(self, packet):
        pass

    def suspects(self):
        """Always empty."""
        return frozenset()


class TestMarkingSchemeBase:
    def test_on_inject_default_zeroes_mf(self, mesh44):
        scheme = NullScheme()
        scheme.attach(mesh44)
        packet = Packet(IPHeader(1, 2), 0, 15)
        packet.header.identification = 0xFFFF
        scheme.on_inject(packet, 0)
        assert packet.header.identification == 0

    def test_use_before_attach_rejected(self):
        scheme = NullScheme()
        packet = Packet(IPHeader(1, 2), 0, 15)
        with pytest.raises(MarkingError):
            scheme.on_inject(packet, 0)

    def test_default_cost_model_empty(self, mesh44):
        scheme = NullScheme()
        scheme.attach(mesh44)
        assert scheme.per_hop_operations() == {}

    def test_victim_analysis_counts_observations(self, mesh44):
        scheme = NullScheme()
        scheme.attach(mesh44)
        analysis = scheme.new_victim_analysis(15)
        for _ in range(5):
            analysis.observe(Packet(IPHeader(1, 2), 0, 15))
        assert analysis.packets_observed == 5
        assert analysis.victim == 15


class TestErrorHierarchy:
    def test_every_library_error_is_a_repro_error(self):
        for name in errors.__all__:
            exc_class = getattr(errors, name)
            assert issubclass(exc_class, ReproError), name

    @pytest.mark.parametrize("name,parent", [
        ("ConfigurationError", ValueError),
        ("TopologyError", ValueError),
        ("AddressingError", KeyError),
        ("SimulationError", RuntimeError),
        ("FieldLayoutError", ValueError),
    ])
    def test_stdlib_compatible_parents(self, name, parent):
        assert issubclass(getattr(errors, name), parent)

    def test_specific_catches(self):
        # A FieldOverflowError is a MarkingError is a ReproError.
        assert issubclass(errors.FieldOverflowError, errors.MarkingError)
        assert issubclass(errors.ReconstructionError, errors.IdentificationError)
        assert issubclass(errors.UnroutablePacketError, errors.RoutingError)
        assert issubclass(errors.LivelockError, errors.RoutingError)
        assert issubclass(errors.BufferOverflowError, errors.NetworkError)

    def test_unroutable_carries_context(self):
        exc = errors.UnroutablePacketError("blocked", current=3, destination=9)
        assert exc.current == 3
        assert exc.destination == 9
