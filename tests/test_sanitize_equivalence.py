"""Sanitized runs are invisible: golden and batched pins hold unchanged.

These tests (marker ``sanitize``; CI runs them as the sanitize-smoke job via
``pytest -m sanitize``) re-run the repo's strongest determinism pins with
``REPRO_SANITIZE=1``:

* a subset of the seed-for-seed golden scenarios must reproduce
  ``tests/golden/equivalence.json`` byte-for-byte with zero sanitizer
  reports — enabling the instrumentation may not perturb a single draw or
  event;
* the exact and batched engines must still agree with each other;
* the deliberately broken fixture (``tests/fixtures/sanitize_bug.py``) must
  be caught by *both* layers — statically by lint rule D4 and dynamically
  by the SimSanitizer — proving the static and runtime halves cover the
  same invariant.
"""

import json
from pathlib import Path

import pytest

from repro.engine.simulator import Simulator
from repro.errors import SanitizerError
from repro.lint import lint_sources

from tests.test_golden_equivalence import GOLDEN_PATH, run_scenario
from tests.test_properties_batched_equivalence import _run as run_engines

pytestmark = pytest.mark.sanitize

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "sanitize_bug.py"

#: one scenario per topology family keeps the smoke fast while still
#: exercising deterministic and adaptive routing under the sanitizer.
GOLDEN_SUBSET = [
    ("mesh_dor", "mesh", (4, 4), "dor", "first", 11),
    ("torus_adaptive", "torus", (4, 4), "fully-adaptive", "random", 23),
    ("hypercube_dor", "hypercube", (4,), "dor", "first", 42),
]


@pytest.mark.parametrize("name,kind,dims,routing,selection,seed",
                         GOLDEN_SUBSET, ids=[s[0] for s in GOLDEN_SUBSET])
def test_golden_pins_hold_under_sanitizer(monkeypatch, name, kind, dims,
                                          routing, selection, seed):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    golden = json.loads(GOLDEN_PATH.read_text())
    fresh = run_scenario(kind, dims, routing, selection, seed)
    assert fresh == golden[name]


def test_engines_agree_under_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    exact = run_engines("exact", "ddpm", "dor", "mesh", (4, 4))
    batched = run_engines("batched", "ddpm", "dor", "mesh", (4, 4))
    assert batched == exact


class TestSeededFixtureBug:
    """The broken fixture is caught statically (D4) and dynamically."""

    def test_lint_d4_catches_the_fixture_statically(self):
        source = FIXTURE_PATH.read_text()
        report = lint_sources(
            [("src/repro/attack/sanitize_bug.py", source)], select=["D4"])
        assert not report.ok
        assert {v.rule for v in report.violations} == {"D4"}
        assert any("default_rng" in v.message or "'rng'" in v.message
                   for v in report.violations)

    def test_sanitizer_catches_the_fixture_dynamically(self):
        source = FIXTURE_PATH.read_text()
        # Execute the fixture as if it were shipped attack code; hand its
        # siphon() a stream already owned by marking-side code.
        attack_ns = {"__name__": "repro.attack.sanitize_bug"}
        exec(compile(source, str(FIXTURE_PATH), "exec"), attack_ns)
        owner_ns = {"__name__": "repro.marking.fixture_owner"}
        exec(compile("def touch(stream):\n    stream.random()\n",
                     "<owner>", "exec"), owner_ns)

        sim = Simulator(sanitize=True)
        stream = sim.rng.stream("marking:tree")
        owner_ns["touch"](stream)
        with pytest.raises(SanitizerError) as excinfo:
            attack_ns["siphon"](stream)
        assert excinfo.value.report.kind == "rng-cross-use"
