"""Unit tests for the attack detectors."""

import numpy as np
import pytest

from repro.defense.detection import CusumDetector, EntropyDetector, RateThresholdDetector
from repro.errors import ConfigurationError, DetectionError
from repro.network.ip import IPHeader
from repro.network.nic import DeliveredPacket
from repro.network.packet import Packet


def delivery(time, src_ip=0x0A000001, node=15):
    packet = Packet(IPHeader(src_ip, 0x0A000010), 0, node)
    return DeliveredPacket(packet, node, time)


class TestRateThreshold:
    def test_quiet_traffic_no_alarm(self):
        det = RateThresholdDetector(window=1.0, threshold_rate=10.0)
        for i in range(20):
            det.observe(delivery(i * 0.5))  # 2 pkt/s
        assert not det.under_attack
        assert det.alarm_time is None

    def test_flood_alarms(self):
        det = RateThresholdDetector(window=1.0, threshold_rate=10.0)
        for i in range(30):
            det.observe(delivery(1.0 + i * 0.01))  # 100 pkt/s
        assert det.under_attack
        assert det.alarm_time is not None

    def test_alarm_clears_when_flood_stops(self):
        det = RateThresholdDetector(window=1.0, threshold_rate=10.0)
        for i in range(30):
            det.observe(delivery(i * 0.01))
        assert det.under_attack
        det.observe(delivery(100.0))  # long quiet gap
        assert not det.under_attack
        # First alarm time is preserved for the timeline.
        assert det.alarm_time is not None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RateThresholdDetector(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            RateThresholdDetector(1.0, 0.0)


class TestEntropy:
    def _feed_uniform(self, det, n, rng, start=0.0):
        for i in range(n):
            det.observe(delivery(start + i * 0.01,
                                 src_ip=0x0A000000 + int(rng.integers(1, 17))))

    def test_spoofed_flood_raises_entropy_alarm(self):
        rng = np.random.default_rng(0)
        det = EntropyDetector(window_packets=64, tolerance=1.5)
        self._feed_uniform(det, 64, rng)
        det.calibrate()
        assert not det.under_attack
        # Random 32-bit spoofs: entropy jumps toward log2(window).
        for i in range(128):
            det.observe(delivery(1.0 + i * 0.001,
                                 src_ip=int(rng.integers(2**32))))
        assert det.under_attack

    def test_single_source_flood_drops_entropy(self):
        rng = np.random.default_rng(1)
        det = EntropyDetector(window_packets=64, tolerance=1.5)
        self._feed_uniform(det, 64, rng)
        det.calibrate()
        for i in range(128):
            det.observe(delivery(1.0 + i * 0.001, src_ip=0x0A000005))
        assert det.under_attack

    def test_steady_traffic_no_alarm(self):
        rng = np.random.default_rng(2)
        det = EntropyDetector(window_packets=64, tolerance=1.5)
        self._feed_uniform(det, 64, rng)
        det.calibrate()
        self._feed_uniform(det, 200, rng, start=10.0)
        assert not det.under_attack

    def test_entropy_before_data_raises(self):
        det = EntropyDetector()
        with pytest.raises(DetectionError):
            det.current_entropy()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EntropyDetector(window_packets=4)
        with pytest.raises(ConfigurationError):
            EntropyDetector(tolerance=0.0)


class TestCusum:
    def test_sustained_increase_alarms(self):
        det = CusumDetector(window=1.0, drift=5.0, threshold=20.0)
        # 3 pkt/window baseline: below drift, never accumulates.
        for i in range(30):
            det.observe(delivery(i / 3.0))
        assert not det.under_attack
        # Sustained 15 pkt/window: accumulates (15-5)=10 per window.
        base = 10.0
        for i in range(60):
            det.observe(delivery(base + i / 15.0))
        assert det.under_attack

    def test_short_burst_tolerated(self):
        det = CusumDetector(window=1.0, drift=5.0, threshold=50.0)
        # One hot window only.
        for i in range(20):
            det.observe(delivery(0.5 + i * 0.01))
        for i in range(20):
            det.observe(delivery(2.0 + i * 1.0))  # quiet again
        assert not det.under_attack

    def test_statistic_decays_in_quiet_windows(self):
        det = CusumDetector(window=1.0, drift=5.0, threshold=1000.0)
        for i in range(20):
            det.observe(delivery(0.5 + i * 0.01))
        det.observe(delivery(2.5))
        after_burst = det.statistic
        det.observe(delivery(10.0))
        assert det.statistic < after_burst

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CusumDetector(0.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            CusumDetector(1.0, -1.0, 1.0)
        with pytest.raises(ConfigurationError):
            CusumDetector(1.0, 1.0, 0.0)


class TestDutyCycle:
    def _pulse(self, det, *, period, duty, rate, duration, start=0.0):
        """Feed a square-wave pulsing flood: `rate` during each on-burst."""
        t = start
        while t < start + duration:
            burst_end = t + period * duty
            when = t
            while when < burst_end:
                det.observe(delivery(when))
                when += 1.0 / rate
            t += period

    def test_pulsing_flood_alarms(self):
        from repro.defense.detection import DutyCycleDetector

        det = DutyCycleDetector(burst_window=0.1, burst_rate=20.0,
                                min_bursts=4)
        self._pulse(det, period=1.0, duty=0.2, rate=100.0, duration=5.0)
        det.observe(delivery(6.0))  # close the trailing bucket
        assert det.under_attack
        assert det.alarm_time is not None

    def test_rate_threshold_misses_the_same_pulsing_flood(self):
        # The motivating contrast: mean rate 20 pkt/s stays under a 30
        # pkt/s threshold averaged over windows longer than a burst, so
        # the classic detector never fires on the identical trace.
        det = RateThresholdDetector(window=1.0, threshold_rate=30.0)
        self._pulse(det, period=1.0, duty=0.2, rate=100.0, duration=5.0)
        assert not det.under_attack

    def test_single_benign_spike_tolerated(self):
        from repro.defense.detection import DutyCycleDetector

        det = DutyCycleDetector(burst_window=0.1, burst_rate=20.0,
                                min_bursts=4)
        self._pulse(det, period=1.0, duty=0.1, rate=100.0, duration=1.0)
        det.observe(delivery(2.0))  # close out the spike's buckets
        assert not det.under_attack
        assert 0.0 < det.burst_fraction < 1.0

    def test_sustained_flood_alarms_too(self):
        from repro.defense.detection import DutyCycleDetector

        det = DutyCycleDetector(burst_window=0.1, burst_rate=20.0,
                                min_bursts=4)
        for i in range(200):
            det.observe(delivery(i * 0.01))  # 100 pkt/s continuous
        assert det.under_attack

    def test_validation(self):
        from repro.defense.detection import DutyCycleDetector

        with pytest.raises(ConfigurationError):
            DutyCycleDetector(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            DutyCycleDetector(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            DutyCycleDetector(1.0, 1.0, min_bursts=0)
        with pytest.raises(ConfigurationError):
            DutyCycleDetector(1.0, 1.0, min_bursts=5, history=3)
