"""Unit tests for the torus (k-ary n-cube) topology."""

import pytest

from repro.errors import TopologyError
from repro.topology import Torus
from repro.topology.properties import bfs_distances, diameter


class TestConstruction:
    def test_node_count(self):
        assert Torus((4, 4)).num_nodes == 16

    def test_k2_rejected(self):
        with pytest.raises(TopologyError):
            Torus((2, 4))

    def test_k1_dimension_allowed(self):
        ring = Torus((1, 5))
        assert ring.num_nodes == 5
        assert ring.degree() == 2


class TestNeighbors:
    def test_every_node_has_degree_2n(self):
        torus = Torus((4, 4))
        for node in torus.nodes():
            assert len(torus.neighbors(node)) == 4

    def test_wraparound_links_exist(self):
        torus = Torus((4, 4))
        assert torus.is_neighbor(torus.index((0, 0)), torus.index((0, 3)))
        assert torus.is_neighbor(torus.index((0, 0)), torus.index((3, 0)))

    def test_edge_count(self):
        # k-ary 2-cube: 2 * k^2 undirected links.
        assert len(Torus((4, 4)).to_edge_list()) == 32

    def test_ring_k3_no_duplicate_neighbors(self):
        ring = Torus((3,))
        assert sorted(ring.neighbors(0)) == [1, 2]
        assert len(ring.neighbors(0)) == 2


class TestMetrics:
    def test_paper_diameter_formula(self):
        # Paper: torus diameter is k/2 per dimension (k even).
        assert Torus((4, 4)).diameter() == 4
        assert Torus((8, 8)).diameter() == 8

    def test_odd_k_diameter(self):
        assert Torus((5, 5)).diameter() == 4
        assert Torus((5, 5)).diameter() == diameter(Torus((5, 5)))

    def test_diameter_matches_bfs(self):
        torus = Torus((4, 6))
        assert torus.diameter() == diameter(torus)

    def test_min_hops_matches_bfs(self):
        torus = Torus((5, 3))
        dist = bfs_distances(torus, 7)
        for node, d in dist.items():
            assert torus.min_hops(7, node) == d


class TestStep:
    def test_wraps(self):
        torus = Torus((4, 4))
        assert torus.coord(torus.step(torus.index((0, 3)), 1, 1)) == (0, 0)
        assert torus.coord(torus.step(torus.index((0, 0)), 0, -1)) == (3, 0)

    def test_k1_dimension_returns_none(self):
        ring = Torus((1, 5))
        assert ring.step(0, 0, 1) is None


class TestOffsetAlgebra:
    def test_distance_vector_minimal(self):
        torus = Torus((4, 4))
        assert torus.distance_vector(torus.index((0, 0)), torus.index((0, 3))) == (0, -1)

    def test_hop_delta_wrap_positive(self):
        torus = Torus((4, 4))
        u, v = torus.index((0, 3)), torus.index((0, 0))
        assert torus.hop_delta(u, v) == (0, 1)
        assert torus.hop_delta(v, u) == (0, -1)

    def test_resolve_source_all_pairs(self):
        torus = Torus((4, 3))
        for src in torus.nodes():
            for dst in torus.nodes():
                v = torus.distance_vector(src, dst)
                assert torus.resolve_source(dst, v) == src

    def test_resolve_source_modular_folding(self):
        # Any offset congruent mod k resolves identically — the property
        # that makes looping (non-minimal) routes harmless to DDPM.
        torus = Torus((4, 4))
        dst = torus.index((2, 3))
        base = (1, -1)
        shifted = (1 + 4, -1 - 8)
        assert torus.resolve_source(dst, base) == torus.resolve_source(dst, shifted)

    def test_arity_check(self):
        with pytest.raises(TopologyError):
            Torus((4, 4)).resolve_source(0, (1,))

    def test_hop_delta_rejects_non_hop(self):
        torus = Torus((4, 4))
        with pytest.raises(TopologyError):
            torus.hop_delta(0, torus.index((1, 1)))


class TestPaperWalkthrough:
    def test_figure3b_distance_vector_sequence(self):
        """Paper §5: adaptive walk on a 2-D mesh-like grid from (1,1) to (2,3):
        the vector evolves (1,0),(2,0),(2,-1),(1,-1),(1,0),(1,1),(1,2)."""
        # The walkthrough is additive (no wrap crossings), so a torus
        # reproduces it exactly with the same hops.
        torus = Torus((4, 4))
        path_coords = [(1, 1), (2, 1), (3, 1), (3, 0), (2, 0), (2, 1), (2, 2), (2, 3)]
        path = [torus.index(c) for c in path_coords]
        v = torus.identity_offset()
        seen = []
        for u, w in zip(path[:-1], path[1:]):
            v = torus.combine_offsets(v, torus.hop_delta(u, w))
            seen.append(v)
        assert seen == [(1, 0), (2, 0), (2, -1), (1, -1), (1, 0), (1, 1), (1, 2)]
        assert torus.coord(torus.resolve_source(path[-1], v)) == (1, 1)
