"""Property-based tests for the extension components (hypothesis).

H-DDPM's invariant mirrors plain DDPM's: for any legal walk between hosts
on a hybrid topology, marking through the real 16-bit field and resolving
at the destination recovers the true source host. Advanced-PPM's
reconstruction must be *sound*: every node it accepts at level d really is
d+1 minimal hops from the victim along an accepted chain.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.marking import AdvancedPpmScheme, HierarchicalDdpmScheme
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import TableRouter, walk_route
from repro.topology import ClusterMesh, Mesh


@st.composite
def hybrid_and_hosts(draw):
    """A random small ClusterMesh plus a (src, dst) host pair."""
    dims = tuple(draw(st.lists(st.integers(2, 4), min_size=1, max_size=2)))
    hosts_per_switch = draw(st.integers(1, 4))
    wrap = draw(st.booleans()) and all(k >= 3 for k in dims)
    cm = ClusterMesh(dims, hosts_per_switch, wraparound=wrap)
    src = draw(st.integers(0, cm.num_hosts - 1))
    dst = draw(st.integers(0, cm.num_hosts - 1))
    return cm, src, dst


@st.composite
def hybrid_random_walk(draw):
    """A random ClusterMesh plus an arbitrary legal walk host -> host."""
    cm, src, dst = draw(hybrid_and_hosts())
    # Random wander on the graph, then a shortest-path tail to a host.
    node = src
    walk = [node]
    for _ in range(draw(st.integers(0, 12))):
        neighbors = cm.neighbors(node)
        node = neighbors[draw(st.integers(0, len(neighbors) - 1))]
        walk.append(node)
    from repro.topology.properties import shortest_path

    tail = shortest_path(cm, node, dst)
    walk.extend(tail[1:])
    return cm, walk


class TestHddpmInvariant:
    @settings(max_examples=60, deadline=None)
    @given(hybrid_random_walk())
    def test_any_walk_between_hosts_resolves_exactly(self, case):
        cm, walk = case
        src, dst = walk[0], walk[-1]
        if src == dst:
            return
        scheme = HierarchicalDdpmScheme()
        try:
            scheme.attach(cm)
        except Exception:
            return  # layout too large for this draw; capacity is tested elsewhere
        packet = Packet(IPHeader(1, 2), src, dst)
        scheme.on_inject(packet, src)
        for u, v in zip(walk[:-1], walk[1:]):
            scheme.on_hop(packet, u, v)
        assert scheme.identify(packet, dst) == src

    @settings(max_examples=40, deadline=None)
    @given(hybrid_and_hosts())
    def test_shortest_routes_resolve_exactly(self, case):
        cm, src, dst = case
        if src == dst:
            return
        scheme = HierarchicalDdpmScheme()
        try:
            scheme.attach(cm)
        except Exception:
            return
        router = TableRouter(cm)
        path = walk_route(cm, router, src, dst, lambda c, cur: c[0])
        packet = Packet(IPHeader(1, 2), src, dst)
        scheme.on_inject(packet, src)
        for u, v in zip(path[:-1], path[1:]):
            scheme.on_hop(packet, u, v)
        assert scheme.identify(packet, dst) == src


class TestAdvancedPpmSoundness:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 14), st.integers(0, 2**31 - 1))
    def test_accepted_levels_are_true_distances(self, src, seed):
        """Every accepted level-d node is within d+1 hops of the victim and
        lies on the true path (soundness of the map-based chaining, modulo
        hash collisions the 11-bit hash makes vanishingly rare on 16 nodes)."""
        mesh = Mesh((4, 4))
        victim = 15
        if src == victim:
            return
        scheme = AdvancedPpmScheme(0.3, np.random.default_rng(seed))
        scheme.attach(mesh)
        analysis = scheme.new_victim_analysis(victim)
        from repro.routing import DimensionOrderRouter

        path = walk_route(mesh, DimensionOrderRouter(), src, victim,
                          lambda c, cur: c[0])
        for _ in range(200):
            packet = Packet(IPHeader(1, 2), src, victim)
            scheme.on_inject(packet, src)
            for u, v in zip(path[:-1], path[1:]):
                scheme.on_hop(packet, u, v)
            analysis.observe(packet)
        for level, nodes in analysis.reconstruct().items():
            for node in nodes:
                assert mesh.min_hops(node, victim) <= level + 1
                assert node in path
