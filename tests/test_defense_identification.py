"""Integration tests for the detect-then-identify pipeline."""

import numpy as np
import pytest

from repro.defense.detection import RateThresholdDetector
from repro.defense.identification import IdentificationPipeline
from repro.marking import DdpmScheme
from repro.network import Fabric
from repro.routing import DimensionOrderRouter, MinimalAdaptiveRouter, RandomPolicy
from repro.topology import Mesh


def build_cluster(seed=0):
    topology = Mesh((4, 4))
    scheme = DdpmScheme()
    fab = Fabric(topology, MinimalAdaptiveRouter(), marking=scheme,
                 selection=RandomPolicy(np.random.default_rng(seed)))
    return fab, scheme


class TestWithoutDetector:
    def test_all_packets_analyzed(self):
        fab, scheme = build_cluster()
        pipeline = IdentificationPipeline(fab, 15, scheme.new_victim_analysis(15))
        for i in range(10):
            fab.inject(fab.make_packet(3, 15), delay=i * 0.1)
        fab.run()
        assert pipeline.analyzed_packets == 10
        assert pipeline.total_deliveries == 10
        assert pipeline.suspects() == frozenset({3})
        assert pipeline.alarm_time is None

    def test_first_suspect_time_recorded(self):
        fab, scheme = build_cluster()
        pipeline = IdentificationPipeline(fab, 15, scheme.new_victim_analysis(15))
        fab.inject(fab.make_packet(3, 15), delay=1.0)
        fab.run()
        assert pipeline.first_suspect_time is not None
        assert pipeline.first_suspect_time >= 1.0


class TestWithDetector:
    def test_analysis_gated_by_alarm(self):
        fab, scheme = build_cluster()
        detector = RateThresholdDetector(window=1.0, threshold_rate=20.0)
        pipeline = IdentificationPipeline(fab, 15, scheme.new_victim_analysis(15),
                                          detector)
        # Quiet phase: 2 pkt/s from an innocent node — never analyzed.
        for i in range(6):
            fab.inject(fab.make_packet(1, 15), delay=i * 0.5)
        # Flood phase from the attacker.
        for i in range(200):
            fab.inject(fab.make_packet(9, 15), delay=10.0 + i * 0.005)
        fab.run()
        assert pipeline.alarm_time is not None
        assert pipeline.alarm_time >= 10.0
        assert pipeline.analyzed_packets < pipeline.total_deliveries
        # The quiet-phase innocent is not in the suspect set.
        assert pipeline.suspects() == frozenset({9})

    def test_timeline_summary(self):
        fab, scheme = build_cluster()
        detector = RateThresholdDetector(window=1.0, threshold_rate=5.0)
        pipeline = IdentificationPipeline(fab, 15, scheme.new_victim_analysis(15),
                                          detector)
        for i in range(100):
            fab.inject(fab.make_packet(9, 15), delay=i * 0.01)
        fab.run()
        timeline = pipeline.timeline()
        assert timeline["alarm_time"] is not None
        assert timeline["num_suspects"] == 1
        assert timeline["analyzed_packets"] > 0
