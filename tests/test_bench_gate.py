"""Unit tests for the throughput-gate logic in benchmarks/check_throughput.py.

The gate decides whether CI fails, so its decision logic is tested directly:
the comparison functions are pure in (data, tolerance) and imported here via
importlib (``benchmarks/`` is deliberately not a package).
"""

import importlib.util
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_throughput",
    Path(__file__).parent.parent / "benchmarks" / "check_throughput.py")
gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(gate)


class TestExactGate:
    def test_passes_at_baseline(self):
        data = {"events_per_sec": 1000.0, "packets_per_sec": 500.0}
        assert gate.check_exact(data, dict(data), tolerance=0.9) is False

    def test_faster_never_fails(self):
        base = {"events_per_sec": 1000.0, "packets_per_sec": 500.0}
        fresh = {"events_per_sec": 9000.0, "packets_per_sec": 4500.0}
        assert gate.check_exact(base, fresh, tolerance=0.9) is False

    def test_fails_below_tolerance(self):
        base = {"events_per_sec": 1000.0, "packets_per_sec": 500.0}
        fresh = {"events_per_sec": 800.0, "packets_per_sec": 500.0}
        assert gate.check_exact(base, fresh, tolerance=0.9) is True

    def test_tolerance_is_honored(self):
        """The same regression passes or fails purely on the tolerance."""
        base = {"events_per_sec": 1000.0, "packets_per_sec": 500.0}
        fresh = {"events_per_sec": 800.0, "packets_per_sec": 400.0}
        assert gate.check_exact(base, fresh, tolerance=0.75) is False
        assert gate.check_exact(base, fresh, tolerance=0.85) is True


class TestFloor:
    def test_clears_floor(self):
        assert gate.check_floor("x", measured=1100.0, reference=100.0,
                                floor=10.0, tolerance=1.0) is False

    def test_below_floor_fails(self):
        assert gate.check_floor("x", measured=900.0, reference=100.0,
                                floor=10.0, tolerance=1.0) is True

    def test_tolerance_scales_floor(self):
        # 9x clears a 10x floor at tolerance 0.85 (8.5x required).
        assert gate.check_floor("x", measured=900.0, reference=100.0,
                                floor=10.0, tolerance=0.85) is False

    def test_prints_measured_vs_floor_ratio(self, capsys):
        gate.check_floor("label", measured=2000.0, reference=100.0,
                         floor=10.0, tolerance=1.0)
        out = capsys.readouterr().out
        assert "20.00x measured" in out
        assert "10.0x floor" in out
        assert "2.00x of floor" in out


def _sharded_entry(pps=200.0, batched=100.0, shards=4, cores=8):
    return {"packets_per_sec": pps, "batched_packets_per_sec": batched,
            "shards": shards, "cpu_count": cores}


class TestShardedGate:
    def test_passes_with_speedup_and_cores(self):
        fresh = {"torus64_flood": _sharded_entry(pps=250.0)}
        base = {"torus64_flood": {"packets_per_sec": 200.0}}
        assert gate.check_sharded(base, fresh, tolerance=0.9) is False

    def test_floor_enforced_when_cores_suffice(self):
        # 1.5x speedup on an 8-core host: below the 2x floor -> fail.
        fresh = {"torus64_flood": _sharded_entry(pps=150.0, cores=8)}
        base = {"torus64_flood": {"packets_per_sec": 100.0}}
        assert gate.check_sharded(base, fresh, tolerance=1.0) is True

    def test_floor_skipped_on_small_hosts(self, capsys):
        """cores < shards: the parallel-speedup floor is meaningless, so
        the gate skips it loudly instead of failing machine-dependently."""
        fresh = {"torus64_flood": _sharded_entry(pps=90.0, cores=1)}
        base = {"torus64_flood": {"packets_per_sec": 80.0}}
        assert gate.check_sharded(base, fresh, tolerance=1.0) is False
        out = capsys.readouterr().out
        assert "SKIPPED" in out
        assert "1 core(s) for 4 shards" in out

    def test_regression_still_checked_on_small_hosts(self):
        """Skipping the floor does not skip the baseline comparison."""
        fresh = {"torus64_flood": _sharded_entry(pps=40.0, cores=1)}
        base = {"torus64_flood": {"packets_per_sec": 100.0}}
        assert gate.check_sharded(base, fresh, tolerance=0.9) is True

    def test_missing_workload_fails(self):
        base = {"torus64_flood": {"packets_per_sec": 100.0}}
        assert gate.check_sharded(base, {}, tolerance=0.9) is True

    def test_tolerance_scales_sharded_floor(self):
        # 1.8x clears the 2x floor at tolerance 0.85 (1.7x required).
        fresh = {"torus64_flood": _sharded_entry(pps=180.0, cores=8)}
        base = {"torus64_flood": {"packets_per_sec": 100.0}}
        assert gate.check_sharded(base, fresh, tolerance=0.85) is False


class TestBatchedGate:
    def test_floor_uses_tolerance(self):
        base = {"matched": {"packets_per_sec": 1000.0}}
        fresh = {"matched": {"packets_per_sec": 1000.0}}
        # 10x exact ref of 100 -> exactly at floor with tolerance 1.0.
        assert gate.check_batched(base, fresh, exact_pps=100.0,
                                  exact_source="test", tolerance=1.0) is False
        assert gate.check_batched(base, fresh, exact_pps=120.0,
                                  exact_source="test", tolerance=1.0) is True
        assert gate.check_batched(base, fresh, exact_pps=120.0,
                                  exact_source="test", tolerance=0.8) is False
