"""Unit tests for the SYN-flood victim model."""

import numpy as np
import pytest

from repro.attack.flows import FlowSpec, schedule_flow
from repro.attack.spoofing import InClusterSpoofing
from repro.attack.synflood import HalfOpenTable, SynFloodMonitor
from repro.errors import ConfigurationError
from repro.network import Fabric
from repro.network.packet import PacketKind
from repro.routing import DimensionOrderRouter
from repro.topology import Mesh


class TestHalfOpenTable:
    def test_capacity_enforced(self):
        table = HalfOpenTable(capacity=2, timeout=10.0)
        assert table.try_open(1, 0, now=0.0)
        assert table.try_open(2, 0, now=0.0)
        assert not table.try_open(3, 0, now=0.0)

    def test_timeout_frees_slots(self):
        table = HalfOpenTable(capacity=1, timeout=5.0)
        assert table.try_open(1, 0, now=0.0)
        assert not table.try_open(2, 0, now=4.0)
        assert table.try_open(2, 0, now=6.0)  # first entry expired

    def test_complete_frees_slot(self):
        table = HalfOpenTable(capacity=1, timeout=100.0)
        assert table.try_open(1, 7, now=0.0)
        assert table.complete(1, 7)
        assert not table.complete(1, 7)  # already gone
        assert table.try_open(2, 0, now=0.1)

    def test_occupancy(self):
        table = HalfOpenTable(capacity=4, timeout=5.0)
        table.try_open(1, 0, now=0.0)
        table.try_open(2, 0, now=3.0)
        assert table.occupancy(4.0) == 2
        assert table.occupancy(6.0) == 1  # first expired

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HalfOpenTable(0, 1.0)
        with pytest.raises(ConfigurationError):
            HalfOpenTable(1, 0.0)


class TestSynFloodMonitor:
    def _run(self, attack_rate, capacity=16, seed=0):
        fab = Fabric(Mesh((4, 4)), DimensionOrderRouter())
        rng = np.random.default_rng(seed)
        monitor = SynFloodMonitor(fab, victim=15, capacity=capacity,
                                  timeout=3.0)
        # Legitimate client: honest SYNs at a modest rate.
        legit = FlowSpec(0, 15, rate=5.0, duration=10.0, kind=PacketKind.SYN)
        schedule_flow(fab, legit, rng)
        if attack_rate > 0:
            attack = FlowSpec(5, 15, rate=attack_rate, duration=10.0,
                              kind=PacketKind.SYN, spoofing=InClusterSpoofing())
            schedule_flow(fab, attack, rng)
        fab.run()
        return monitor

    def test_no_attack_no_denial(self):
        # The model's legit client never ACKs, so its own SYNs occupy slots
        # until timeout (steady state rate*timeout = 15); give the table
        # headroom so the clean baseline shows zero denial.
        monitor = self._run(attack_rate=0.0, capacity=64)
        assert monitor.legit_syn_seen > 0
        assert monitor.legit_denial_rate == 0.0

    def test_flood_denies_legitimate_service(self):
        """The paper's §1/§2 scenario: half-open exhaustion denies service
        even though each SYN is individually unremarkable."""
        monitor = self._run(attack_rate=200.0, capacity=16)
        assert monitor.legit_denial_rate > 0.5

    def test_denial_scales_with_capacity(self):
        small = self._run(attack_rate=100.0, capacity=8)
        large = self._run(attack_rate=100.0, capacity=512)
        assert large.legit_denial_rate < small.legit_denial_rate

    def test_spoofed_syns_never_complete(self):
        monitor = self._run(attack_rate=100.0)
        # Attack entries only leave by timeout; occupancy stays saturated
        # through the run, reflected in the low overall accept rate.
        assert monitor.overall_accept_rate < 0.5
