"""Integration: experiment results round-trip through JSON/CSV cleanly."""

import csv

from repro.core import (
    ExperimentConfig,
    MarkingSpec,
    RoutingSpec,
    SelectionSpec,
    TopologySpec,
    sweep,
)
from repro.util.serialization import read_json, write_csv, write_json


def small_sweep():
    configs = [
        ExperimentConfig(
            topology=TopologySpec("mesh", (4, 4)),
            routing=RoutingSpec(routing),
            marking=MarkingSpec("ddpm"),
            selection=SelectionSpec("random"),
            num_attackers=2, duration=1.0, seed=3,
        )
        for routing in ("xy", "minimal-adaptive")
    ]
    return sweep(configs)


class TestResultSerialization:
    def test_json_roundtrip(self, tmp_path):
        records = [r.to_record() for r in small_sweep()]
        path = write_json(records, tmp_path / "results.json")
        loaded = read_json(path)
        assert len(loaded) == 2
        assert loaded[0]["marking"] == "ddpm"
        assert loaded[0]["precision"] == 1.0
        assert isinstance(loaded[0]["exact"], bool)

    def test_csv_roundtrip(self, tmp_path):
        results = small_sweep()
        path = write_csv([r.to_record() for r in results],
                         tmp_path / "results.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert {row["routing"] for row in rows} == {"xy", "minimal-adaptive"}
        assert all(float(row["recall"]) == 1.0 for row in rows)

    def test_score_namedtuple_serializes(self, tmp_path):
        result = small_sweep()[0]
        # The full dataclass (nested NamedTuple score, tuples) must survive.
        path = write_json({"score": result.score,
                           "suspects": result.suspects}, tmp_path / "s.json")
        loaded = read_json(path)
        assert loaded["score"]["precision"] == 1.0
        assert loaded["suspects"] == sorted(result.suspects)
