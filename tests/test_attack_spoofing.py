"""Unit tests for spoofing strategies."""

import numpy as np
import pytest

from repro.attack.spoofing import (
    FixedSpoofing,
    InClusterSpoofing,
    NoSpoofing,
    RandomSpoofing,
    VictimSpoofing,
)
from repro.errors import SpoofingError
from repro.network.addressing import AddressMap


@pytest.fixture
def addresses():
    return AddressMap(16)


class TestStrategies:
    def test_no_spoofing_is_honest(self, addresses, rng):
        assert NoSpoofing().source_ip(5, addresses, rng) == addresses.ip_of(5)

    def test_random_spoofing_varies(self, addresses, rng):
        strat = RandomSpoofing()
        samples = {strat.source_ip(5, addresses, rng) for _ in range(50)}
        assert len(samples) > 40

    def test_in_cluster_spoofs_are_valid_and_not_self(self, addresses, rng):
        strat = InClusterSpoofing()
        for _ in range(200):
            ip = strat.source_ip(5, addresses, rng)
            assert addresses.contains(ip)
            assert addresses.node_of(ip) != 5

    def test_in_cluster_covers_many_peers(self, addresses, rng):
        strat = InClusterSpoofing()
        nodes = {addresses.node_of(strat.source_ip(5, addresses, rng))
                 for _ in range(300)}
        assert len(nodes) >= 10

    def test_in_cluster_single_node_rejected(self, rng):
        with pytest.raises(SpoofingError):
            InClusterSpoofing().source_ip(0, AddressMap(1), rng)

    def test_fixed(self, addresses, rng):
        strat = FixedSpoofing(0xC0A80101)
        assert strat.source_ip(1, addresses, rng) == 0xC0A80101
        assert strat.source_ip(2, addresses, rng) == 0xC0A80101

    def test_fixed_validated(self):
        with pytest.raises(SpoofingError):
            FixedSpoofing(1 << 32)

    def test_victim_spoofing(self, addresses, rng):
        strat = VictimSpoofing(victim=7)
        assert strat.source_ip(3, addresses, rng) == addresses.ip_of(7)
