"""Unit tests for the IP <-> node-index mapping table."""

import pytest

from repro.errors import AddressingError, ConfigurationError
from repro.network.addressing import AddressMap
from repro.network.ip import format_ip


class TestAddressMap:
    def test_bijection(self):
        amap = AddressMap(64)
        for node in range(64):
            assert amap.node_of(amap.ip_of(node)) == node

    def test_sequential_private_block(self):
        amap = AddressMap(4)
        assert format_ip(amap.ip_of(0)) == "10.0.0.1"
        assert format_ip(amap.ip_of(3)) == "10.0.0.4"

    def test_contains(self):
        amap = AddressMap(4)
        assert amap.contains(amap.ip_of(0))
        assert not amap.contains(amap.base)          # network address unassigned
        assert not amap.contains(amap.ip_of(3) + 1)  # past the block

    def test_unknown_address_raises(self):
        amap = AddressMap(4)
        with pytest.raises(AddressingError):
            amap.node_of(0xC0A80101)

    def test_unknown_node_raises(self):
        with pytest.raises(AddressingError):
            AddressMap(4).ip_of(4)

    def test_addresses_iterator(self):
        amap = AddressMap(3)
        assert list(amap.addresses()) == [amap.ip_of(i) for i in range(3)]

    def test_len(self):
        assert len(AddressMap(17)) == 17

    def test_block_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressMap(10, base=(1 << 32) - 5)

    def test_custom_base(self):
        amap = AddressMap(2, base=0xC0A80000)
        assert format_ip(amap.ip_of(0)) == "192.168.0.1"
