"""Unit tests for odd-even turn-model routing."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.routing import OddEvenRouter, walk_route
from repro.routing.base import RouteState
from repro.routing.selection import RandomPolicy
from repro.topology import Mesh, Torus

from tests.conftest import first_candidate


class TestLegality:
    def test_requires_2d_mesh(self, torus44, cube3):
        with pytest.raises(RoutingError):
            OddEvenRouter().validate(torus44)
        with pytest.raises(RoutingError):
            OddEvenRouter().validate(cube3)

    def test_all_pairs_deliver_minimally(self):
        mesh = Mesh((6, 6))
        router = OddEvenRouter()
        rng = np.random.default_rng(0)
        select = RandomPolicy(rng).binder()
        for src in range(36):
            for dst in range(36):
                if src == dst:
                    continue
                path = walk_route(mesh, router, src, dst, select)
                assert len(path) - 1 == mesh.min_hops(src, dst), (src, dst)

    def test_no_en_es_turns_in_even_columns(self):
        """Chiu's rule 1/2: turns from east to north/south never occur at
        even columns (outside the source column)."""
        mesh = Mesh((6, 6))
        router = OddEvenRouter()
        rng = np.random.default_rng(1)
        select = RandomPolicy(rng).binder()
        for trial in range(200):
            src, dst = rng.integers(36, size=2)
            if src == dst:
                continue
            path = walk_route(mesh, router, int(src), int(dst), select)
            coords = [mesh.coord(n) for n in path]
            for i in range(1, len(coords) - 1):
                arrived_east = coords[i][1] == coords[i - 1][1] + 1
                turns_vertical = coords[i + 1][1] == coords[i][1]
                if arrived_east and turns_vertical:
                    col = coords[i][1]
                    assert col % 2 == 1, (coords, i)

    def test_no_nw_sw_turns_in_odd_columns(self):
        mesh = Mesh((6, 6))
        router = OddEvenRouter()
        rng = np.random.default_rng(2)
        select = RandomPolicy(rng).binder()
        for trial in range(200):
            src, dst = rng.integers(36, size=2)
            if src == dst:
                continue
            path = walk_route(mesh, router, int(src), int(dst), select)
            coords = [mesh.coord(n) for n in path]
            for i in range(1, len(coords) - 1):
                arrived_vertical = coords[i][1] == coords[i - 1][1] and \
                    coords[i][0] != coords[i - 1][0]
                turns_west = coords[i + 1][1] == coords[i][1] - 1
                if arrived_vertical and turns_west:
                    assert coords[i][1] % 2 == 0, (coords, i)


class TestAdaptivity:
    def test_offers_multiple_candidates_somewhere(self):
        mesh = Mesh((6, 6))
        router = OddEvenRouter()
        found = False
        for src in range(36):
            state = RouteState(35)
            state.scratch["oddeven_source_col"] = mesh.coord(src)[1]
            if len(router.candidates(mesh, src, state)) > 1:
                found = True
                break
        assert found

    def test_path_diversity(self):
        mesh = Mesh((6, 6))
        router = OddEvenRouter()
        rng = np.random.default_rng(3)
        select = RandomPolicy(rng).binder()
        paths = {tuple(walk_route(mesh, router, 0, 35, select))
                 for _ in range(50)}
        assert len(paths) > 2

    def test_routes_around_some_faults(self):
        # Odd-even has adaptivity where XY has none: a fault on one of two
        # offered candidates is survivable.
        mesh = Mesh((6, 6))
        src = mesh.index((0, 1))  # odd column: vertical or east both legal
        dst = mesh.index((3, 4))
        mesh.fail_link(src, mesh.index((0, 2)))  # kill the east option
        router = OddEvenRouter()
        rng = np.random.default_rng(4)
        path = walk_route(mesh, router, src, dst, RandomPolicy(rng).binder())
        assert path[-1] == dst
