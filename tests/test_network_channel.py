"""Unit tests for channels and credit flow control."""

import pytest

from repro.engine.simulator import Simulator
from repro.errors import BufferOverflowError, ConfigurationError
from repro.network.channel import Channel
from repro.network.flowcontrol import StoreAndForward
from repro.network.ip import IPHeader
from repro.network.packet import Packet


def make_packet(payload=80):
    return Packet(IPHeader(1, 2, total_length=20 + payload), 0, 1)


def make_channel(sim, arrivals, *, latency=1.0, bandwidth=100.0, capacity=2):
    return Channel(sim, StoreAndForward(), 0, 1, latency=latency,
                   bandwidth=bandwidth, buffer_capacity=capacity,
                   on_arrival=lambda p, c: arrivals.append((sim.now, p)))


class TestTiming:
    def test_arrival_after_serialization_plus_latency(self):
        sim = Simulator()
        arrivals = []
        chan = make_channel(sim, arrivals)
        chan.enqueue(make_packet(80))  # 100 bytes @ 100 B/t = 1.0, + 1.0 latency
        sim.run()
        assert arrivals[0][0] == pytest.approx(2.0)

    def test_serialization_serializes(self):
        # Two packets: second starts only after the first's hold time.
        sim = Simulator()
        arrivals = []
        chan = make_channel(sim, arrivals, capacity=4)
        chan.enqueue(make_packet(80))
        chan.enqueue(make_packet(80))
        sim.run()
        times = [t for t, _ in arrivals]
        assert times == [pytest.approx(2.0), pytest.approx(3.0)]

    def test_packets_keep_fifo_order(self):
        sim = Simulator()
        arrivals = []
        chan = make_channel(sim, arrivals, capacity=4)
        packets = [make_packet() for _ in range(3)]
        for p in packets:
            chan.enqueue(p)
        sim.run()
        assert [p.packet_id for _, p in arrivals] == [p.packet_id for p in packets]


class TestCredits:
    def test_transmission_stalls_without_credit(self):
        sim = Simulator()
        arrivals = []
        chan = make_channel(sim, arrivals, capacity=1)
        chan.enqueue(make_packet())
        chan.enqueue(make_packet())
        sim.run()
        # Only the first crossed; the second waits for a credit return.
        assert len(arrivals) == 1
        assert len(chan.queue) == 1
        chan.return_credit()
        sim.run()
        assert len(arrivals) == 2

    def test_credit_overflow_guarded(self):
        sim = Simulator()
        chan = make_channel(sim, [], capacity=1)
        with pytest.raises(BufferOverflowError):
            chan.return_credit()

    def test_occupancy_counts_queue_and_inflight(self):
        sim = Simulator()
        chan = make_channel(sim, [], capacity=1)
        assert chan.occupancy() == 0
        chan.enqueue(make_packet())  # consumes the credit immediately
        chan.enqueue(make_packet())  # waits in queue
        assert chan.occupancy() == 2


class TestFailure:
    def test_enqueue_on_failed_channel_rejected(self):
        sim = Simulator()
        chan = make_channel(sim, [])
        chan.failed = True
        with pytest.raises(BufferOverflowError):
            chan.enqueue(make_packet())


class TestValidation:
    def test_bad_parameters(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            Channel(sim, StoreAndForward(), 0, 1, latency=-1, bandwidth=1,
                    buffer_capacity=1, on_arrival=lambda p, c: None)
        with pytest.raises(ConfigurationError):
            Channel(sim, StoreAndForward(), 0, 1, latency=0, bandwidth=0,
                    buffer_capacity=1, on_arrival=lambda p, c: None)
        with pytest.raises(ConfigurationError):
            Channel(sim, StoreAndForward(), 0, 1, latency=0, bandwidth=1,
                    buffer_capacity=0, on_arrival=lambda p, c: None)
