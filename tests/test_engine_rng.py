"""Unit tests for RngRegistry."""

import pytest

from repro.engine.rng import RngRegistry


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(7).stream("traffic").random(4)
        b = RngRegistry(7).stream("traffic").random(4)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = RngRegistry(7).stream("traffic").random()
        b = RngRegistry(8).stream("traffic").random()
        assert a != b

    def test_different_names_differ(self):
        reg = RngRegistry(7)
        assert reg.stream("a").random() != reg.stream("b").random()

    def test_stream_is_cached(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        reg1 = RngRegistry(7)
        first = reg1.stream("a").random(3)

        reg2 = RngRegistry(7)
        reg2.stream("zzz")  # extra stream created first
        second = reg2.stream("a").random(3)
        assert list(first) == list(second)

    def test_reset_restarts_sequences(self):
        reg = RngRegistry(7)
        first = reg.stream("a").random()
        reg.reset()
        again = reg.stream("a").random()
        assert first == again

    def test_spawn_children_reproducible(self):
        a = RngRegistry(7).spawn("child").stream("x").random()
        b = RngRegistry(7).spawn("child").stream("x").random()
        assert a == b

    def test_spawn_children_differ_by_name(self):
        reg = RngRegistry(7)
        a = reg.spawn("one").stream("x").random()
        b = reg.spawn("two").stream("x").random()
        assert a != b

    def test_seed_type_checked(self):
        with pytest.raises(TypeError):
            RngRegistry("7")
