"""Unit tests for repro.util.hashing."""

import pytest

from repro.util.hashing import hash_bits, hash_edge, splitmix64


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_64bit_range(self):
        for v in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(v) < 2**64

    def test_avalanche(self):
        # Flipping one input bit should flip roughly half the output bits.
        a, b = splitmix64(1000), splitmix64(1001)
        flipped = bin(a ^ b).count("1")
        assert 16 <= flipped <= 48

    def test_distinct_inputs_distinct_outputs_smallrange(self):
        outputs = {splitmix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000


class TestHashEdge:
    def test_order_sensitive(self):
        assert hash_edge(1, 2) != hash_edge(2, 1)

    def test_deterministic(self):
        assert hash_edge(5, 9) == hash_edge(5, 9)


class TestHashBits:
    def test_width(self):
        for bits in (1, 8, 16, 64):
            assert 0 <= hash_bits(123, bits) < (1 << bits)

    def test_one_bit_balanced(self):
        ones = sum(hash_bits(i, 1) for i in range(2000))
        assert 800 <= ones <= 1200  # roughly fair coin

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            hash_bits(1, 0)
        with pytest.raises(ValueError):
            hash_bits(1, 65)
