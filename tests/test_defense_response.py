"""Integration tests for the quarantine controller."""

import numpy as np
import pytest

from repro.defense.identification import IdentificationPipeline
from repro.defense.response import QuarantineController
from repro.errors import ConfigurationError
from repro.marking import DdpmScheme
from repro.network import Fabric
from repro.routing import MinimalAdaptiveRouter, RandomPolicy
from repro.topology import Mesh


def build(seed=0, confirmation=3):
    topology = Mesh((4, 4))
    scheme = DdpmScheme()
    fab = Fabric(topology, MinimalAdaptiveRouter(), marking=scheme,
                 selection=RandomPolicy(np.random.default_rng(seed)))
    pipeline = IdentificationPipeline(fab, 15, scheme.new_victim_analysis(15))
    controller = QuarantineController(fab, pipeline,
                                      confirmation_packets=confirmation)
    return fab, pipeline, controller


class TestQuarantine:
    def test_attacker_quarantined_after_confirmation(self):
        fab, pipeline, controller = build()
        for i in range(20):
            fab.inject(fab.make_packet(9, 15), delay=i * 0.1)
        fab.run()
        assert 9 in controller.quarantined
        # Quarantine stopped the flood: fewer than all 20 arrived.
        assert fab.counters["delivered"] < 20
        assert fab.counters["dropped_filtered_at_source"] > 0

    def test_reaction_latency_positive(self):
        fab, pipeline, controller = build()
        for i in range(20):
            fab.inject(fab.make_packet(9, 15), delay=1.0 + i * 0.1)
        fab.run()
        latency = controller.reaction_latency(attack_start=1.0)
        assert latency is not None and latency > 0

    def test_single_packet_does_not_quarantine(self):
        fab, pipeline, controller = build(confirmation=3)
        fab.inject(fab.make_packet(9, 15))
        fab.run()
        assert controller.quarantined == frozenset()
        assert controller.reaction_latency(0.0) is None

    def test_confirmation_one_is_immediate(self):
        fab, pipeline, controller = build(confirmation=1)
        fab.inject(fab.make_packet(9, 15))
        fab.run()
        assert 9 in controller.quarantined

    def test_legit_traffic_keeps_flowing(self):
        fab, pipeline, controller = build()
        # Attack from 9, legit traffic from 2 to another node.
        received_elsewhere = []
        fab.add_delivery_handler(12, lambda ev: received_elsewhere.append(ev))
        for i in range(20):
            fab.inject(fab.make_packet(9, 15), delay=i * 0.1)
            fab.inject(fab.make_packet(2, 12), delay=i * 0.1)
        fab.run()
        assert len(received_elsewhere) == 20  # node 2 never blocked

    def test_validation(self):
        fab, pipeline, _ = build()
        with pytest.raises(ConfigurationError):
            QuarantineController(fab, pipeline, confirmation_packets=0)
