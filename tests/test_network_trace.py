"""Unit tests for path observation instrumentation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network import Fabric, FabricConfig
from repro.network.trace import PathObserver
from repro.routing import DimensionOrderRouter, MinimalAdaptiveRouter, RandomPolicy
from repro.topology import Mesh


class TestPathObserver:
    def test_requires_tracing_enabled(self):
        fab = Fabric(Mesh((4, 4)), DimensionOrderRouter())
        with pytest.raises(ConfigurationError):
            PathObserver(fab)

    def test_deterministic_routing_single_path(self):
        fab = Fabric(Mesh((4, 4)), DimensionOrderRouter(),
                     config=FabricConfig(trace_packets=True))
        observer = PathObserver(fab)
        for i in range(20):
            fab.inject(fab.make_packet(0, 15), delay=i * 0.01)
        fab.run()
        assert observer.path_diversity(0, 15) == 1
        assert observer.deliveries(0, 15) == 20
        path = observer.distinct_paths(0, 15)[0]
        assert path[0] == 0 and path[-1] == 15

    def test_adaptive_routing_many_paths(self):
        fab = Fabric(Mesh((4, 4)), MinimalAdaptiveRouter(),
                     selection=RandomPolicy(np.random.default_rng(0)),
                     config=FabricConfig(trace_packets=True))
        observer = PathObserver(fab, nodes=[15])
        for i in range(60):
            fab.inject(fab.make_packet(0, 15), delay=i * 0.01)
        fab.run()
        # The paper's §4.1 premise, observed directly.
        assert observer.path_diversity(0, 15) > 5

    def test_pairs_listing(self):
        fab = Fabric(Mesh((4, 4)), DimensionOrderRouter(),
                     config=FabricConfig(trace_packets=True))
        observer = PathObserver(fab)
        fab.inject(fab.make_packet(0, 5))
        fab.inject(fab.make_packet(2, 9))
        fab.run()
        assert observer.pairs() == [(0, 5), (2, 9)]
