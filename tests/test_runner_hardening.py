"""Runner hardening: crash isolation, retries, timeouts, failure reporting.

A poisoned config — one that deserializes fine but explodes when armed
against the actual topology — must cost exactly one slot of a batch, never
the batch. These tests drive both execution paths (in-process and worker
pool) with such configs.
"""

import pytest

from repro.core.config import (
    ExperimentConfig,
    MarkingSpec,
    RoutingSpec,
    TopologySpec,
)
from repro.errors import ConfigurationError, RunnerJobError
from repro.faults import FaultCampaign, LinkFlapSpec
from repro.runner import JobFailure, ParallelRunner, ResultCache, config_hash


def good_config(seed=0):
    return ExperimentConfig(
        topology=TopologySpec("mesh", (4, 4)),
        routing=RoutingSpec("fully-adaptive"),
        marking=MarkingSpec("ddpm"),
        seed=seed,
        duration=0.5,
        attack_rate_per_node=20.0,
    )


def poisoned_config(seed=0):
    # Passes every value-level validation (node 99 is a legal index in
    # principle) but FaultInjector.arm() raises FaultError on a 16-node
    # mesh: the canonical "config from a bigger sweep grid" mistake.
    return ExperimentConfig(
        topology=TopologySpec("mesh", (4, 4)),
        routing=RoutingSpec("fully-adaptive"),
        marking=MarkingSpec("ddpm"),
        seed=seed,
        duration=0.5,
        attack_rate_per_node=20.0,
        faults=FaultCampaign((LinkFlapSpec(u=0, v=99, fail_at=0.1),)),
    )


class TestValidation:
    def test_bad_runner_params(self):
        for kwargs in ({"n_jobs": 0}, {"timeout": 0}, {"timeout": -1.0},
                       {"retries": -1}, {"retry_backoff": -0.1}):
            with pytest.raises(ConfigurationError):
                ParallelRunner(**kwargs)


class TestCrashIsolation:
    def test_poisoned_config_yields_failed_report_not_crash(self):
        runner = ParallelRunner()
        configs = [good_config(0), poisoned_config(1), good_config(2)]
        report = runner.run_batch(configs)
        assert report.status == "error"
        assert report.results[0] is not None
        assert report.results[1] is None
        assert report.results[2] is not None
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.index == 1
        assert failure.error_type == "FaultError"
        assert failure.config_hash == config_hash(configs[1])
        assert "99" in failure.message
        assert failure.attempts == 1

    def test_pool_path_isolates_too(self):
        runner = ParallelRunner(n_jobs=2)
        report = runner.run_batch(
            [good_config(0), poisoned_config(1), good_config(2)])
        assert report.status == "error"
        assert [r is None for r in report.results] == [False, True, False]
        assert report.failures[0].error_type == "FaultError"

    def test_pool_results_match_serial(self):
        configs = [good_config(s) for s in range(3)] + [poisoned_config(9)]
        serial = ParallelRunner(n_jobs=1).run_batch(configs)
        pooled = ParallelRunner(n_jobs=2).run_batch(configs)
        for a, b in zip(serial.results[:3], pooled.results[:3]):
            assert a.to_record() == b.to_record()
        assert serial.results[3] is None and pooled.results[3] is None

    def test_summaries_skip_failed_slots(self):
        report = ParallelRunner().run_batch(
            [good_config(0), good_config(1), poisoned_config(2)])
        assert len(report.ok_results()) == 2
        summary = report.summarize("precision")
        assert summary.n == 2
        assert "FAILED" in report.describe()

    def test_run_raises_for_single_failure(self):
        with pytest.raises(RunnerJobError, match="FaultError"):
            ParallelRunner().run(poisoned_config())


class TestRetries:
    def test_deterministic_failure_consumes_all_attempts(self):
        runner = ParallelRunner(retries=2, retry_backoff=0.0)
        report = runner.run_batch([poisoned_config()])
        assert report.failures[0].attempts == 3  # 1 try + 2 retries

    def test_successes_do_not_retry(self):
        runner = ParallelRunner(retries=3, retry_backoff=0.0)
        report = runner.run_batch([good_config()])
        assert report.status == "ok"
        assert report.failures == []


class TestCacheInteraction:
    def test_failures_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(cache=cache)
        report = runner.run_batch([poisoned_config(), good_config()])
        assert report.status == "error"
        assert report.cache_hits == 0
        # Re-run: the good config is a hit, the poisoned one re-fails
        # (it was never stored as a bogus success).
        again = runner.run_batch([poisoned_config(), good_config()])
        assert again.cache_hits == 1
        assert again.simulated == 1
        assert again.status == "error"


class TestTimeout:
    def test_watchdog_timeout_becomes_failure(self):
        # A 40 ms wall-clock budget is far below what this simulation
        # needs, so the in-worker watchdog fires and the runner records a
        # WatchdogTimeout failure instead of hanging or raising.
        slow = ExperimentConfig(
            topology=TopologySpec("torus", (8, 8)),
            routing=RoutingSpec("fully-adaptive"),
            marking=MarkingSpec("ddpm"),
            duration=50.0,
            attack_rate_per_node=200.0,
        )
        runner = ParallelRunner(timeout=0.04)
        report = runner.run_batch([slow])
        assert report.status == "error"
        assert report.failures[0].error_type == "WatchdogTimeout"
        assert "stall" in report.failures[0].message

    def test_generous_timeout_is_invisible(self):
        report = ParallelRunner(timeout=120.0).run_batch([good_config()])
        assert report.status == "ok"


class TestJobFailureShape:
    def test_str_and_fields(self):
        failure = JobFailure(index=4, config_hash="cafe" * 4,
                             error_type="ValueError", message="boom",
                             attempts=2)
        text = str(failure)
        assert "ValueError" in text and "boom" in text
        assert "cafe" in text

    def test_traceback_preserved_in_details(self):
        report = ParallelRunner().run_batch([poisoned_config()])
        assert "FaultError" in report.failures[0].details
