"""Unit tests for minimal/fully adaptive routing."""

import numpy as np
import pytest

from repro.errors import LivelockError, UnroutablePacketError
from repro.routing import (
    DimensionOrderRouter,
    FullyAdaptiveRouter,
    MinimalAdaptiveRouter,
    walk_route,
)
from repro.routing.base import RouteState
from repro.routing.selection import RandomPolicy
from repro.topology import Hypercube, Mesh, Torus

from tests.conftest import first_candidate


class TestMinimalAdaptive:
    def test_offers_every_profitable_axis(self, mesh44):
        router = MinimalAdaptiveRouter()
        state = RouteState(mesh44.index((2, 2)))
        options = router.candidates(mesh44, mesh44.index((0, 0)), state)
        assert set(options) == {mesh44.index((1, 0)), mesh44.index((0, 1))}

    def test_paths_always_minimal(self, mesh66, rng):
        router = MinimalAdaptiveRouter()
        select = RandomPolicy(rng).binder()
        for _ in range(50):
            src, dst = rng.integers(36, size=2)
            if src == dst:
                continue
            path = walk_route(mesh66, router, int(src), int(dst), select)
            assert len(path) - 1 == mesh66.min_hops(int(src), int(dst))

    def test_path_diversity_under_random_selection(self, mesh44):
        # The paper's §4.1 assumption: adaptive routes are not stable.
        router = MinimalAdaptiveRouter()
        rng = np.random.default_rng(0)
        select = RandomPolicy(rng).binder()
        paths = {tuple(walk_route(mesh44, router, 0, 15, select)) for _ in range(60)}
        assert len(paths) > 5

    def test_blocked_when_all_profitable_links_fail(self, mesh44):
        router = MinimalAdaptiveRouter()
        src = mesh44.index((0, 0))
        mesh44.fail_link(src, mesh44.index((0, 1)))
        mesh44.fail_link(src, mesh44.index((1, 0)))
        with pytest.raises(UnroutablePacketError):
            walk_route(mesh44, router, src, 15, first_candidate)

    def test_works_on_torus_and_hypercube(self, torus44, cube4, rng):
        router = MinimalAdaptiveRouter()
        select = RandomPolicy(rng).binder()
        p1 = walk_route(torus44, router, 0, torus44.index((2, 2)), select)
        assert len(p1) - 1 == torus44.min_hops(0, torus44.index((2, 2)))
        p2 = walk_route(cube4, router, 0b0000, 0b1111, select)
        assert len(p2) - 1 == 4


class TestFullyAdaptive:
    def test_prefers_minimal_when_available(self, mesh44):
        router = FullyAdaptiveRouter()
        state = RouteState(15, misroute_budget=8)
        options = router.candidates(mesh44, 0, state)
        # Only profitable hops offered while they exist.
        assert set(options) == {mesh44.index((0, 1)), mesh44.index((1, 0))}

    def test_misroutes_around_fault(self, rng):
        # Corridor fault: the only profitable hop from (1,1) is dead; must
        # detour (non-minimally) and still arrive.
        mesh = Mesh((3, 3))
        src, dst = mesh.index((1, 0)), mesh.index((1, 2))
        mesh.fail_link(mesh.index((1, 1)), mesh.index((1, 2)))
        router = FullyAdaptiveRouter()
        path = walk_route(mesh, router, src, dst, RandomPolicy(rng).binder(),
                          misroute_budget=6)
        assert path[-1] == dst
        assert len(path) - 1 > mesh.min_hops(src, dst)

    def test_routes_figure2c_like_isolation(self, rng):
        """Paper Figure 2(c): heavy faults force a final west turn; fully
        adaptive routing still delivers."""
        mesh = Mesh((4, 4))
        d = mesh.index((1, 2))
        mesh.fail_link(d, mesh.index((0, 2)))
        mesh.fail_link(d, mesh.index((2, 2)))
        mesh.fail_link(d, mesh.index((1, 1)))
        src = mesh.index((2, 0))
        router = FullyAdaptiveRouter()
        path = walk_route(mesh, router, src, d, RandomPolicy(rng).binder(),
                          misroute_budget=10)
        assert path[-1] == d
        # The approach must come from the east neighbor (1,3).
        assert path[-2] == mesh.index((1, 3))

    def test_zero_budget_behaves_minimal(self, mesh44):
        router = FullyAdaptiveRouter()
        state = RouteState(15, misroute_budget=0)
        src = mesh44.index((0, 0))
        mesh44.fail_link(src, mesh44.index((0, 1)))
        mesh44.fail_link(src, mesh44.index((1, 0)))
        assert router.candidates(mesh44, src, state) == ()

    def test_budget_exhaustion_stops_misrouting(self):
        mesh = Mesh((3, 3))
        router = FullyAdaptiveRouter()
        state = RouteState(mesh.index((1, 2)), misroute_budget=2)
        state.misroutes = 2
        node = mesh.index((1, 1))
        mesh.fail_link(node, mesh.index((1, 2)))
        # Profitable hop dead, budget spent: nothing offered.
        assert router.candidates(mesh, node, state) == ()

    def test_dead_end_allows_backtrack(self):
        # Line graph: 0-1-2, dst=2, link 1-2 dead. From 1 the only escape is
        # back to 0 even though it is the last node.
        mesh = Mesh((1, 3))
        mesh.fail_link(1, 2)
        router = FullyAdaptiveRouter()
        state = RouteState(2, misroute_budget=4)
        state.last_node = 0
        assert router.candidates(mesh, 1, state) == (0,)

    def test_pooled_variant_mixes_candidates(self, mesh44):
        router = FullyAdaptiveRouter(prefer_minimal=False)
        state = RouteState(15, misroute_budget=4)
        options = router.candidates(mesh44, mesh44.index((1, 1)), state)
        # Profitable (2) + misroutes (2, excluding none yet) all pooled.
        assert len(options) == 4

    def test_livelock_guard_raises(self, mesh44):
        # Pathological selection that always walks away from the target.
        router = FullyAdaptiveRouter(prefer_minimal=False)

        def worst(candidates, current):
            return max(candidates,
                       key=lambda c: mesh44.min_hops(c, 15))

        with pytest.raises(LivelockError):
            walk_route(mesh44, router, 0, 15, worst,
                       misroute_budget=10**6, max_hops=50)
