"""Shared fixtures: small topologies, seeded RNGs, convenience builders."""

import numpy as np
import pytest

from repro.topology import Hypercube, Mesh, Torus


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def mesh44():
    return Mesh((4, 4))


@pytest.fixture
def mesh66():
    return Mesh((6, 6))


@pytest.fixture
def torus44():
    return Torus((4, 4))


@pytest.fixture
def torus53():
    return Torus((5, 3))


@pytest.fixture
def cube3():
    return Hypercube(3)


@pytest.fixture
def cube4():
    return Hypercube(4)


@pytest.fixture(params=["mesh", "torus", "hypercube"])
def any_topology(request):
    """One representative of each direct-network family."""
    if request.param == "mesh":
        return Mesh((4, 4))
    if request.param == "torus":
        return Torus((4, 4))
    return Hypercube(4)


def first_candidate(candidates, current):
    """Deterministic selection helper for walk_route in tests."""
    return candidates[0]
