"""Unit tests for PPM path reconstruction."""

import pytest

from repro.marking.ppm_encoding import EdgeMark
from repro.marking.ppm_reconstruct import ReconstructedGraph, reconstruct_paths
from repro.topology import Mesh


@pytest.fixture
def line():
    """1x5 mesh: 0-1-2-3-4, victim at 4."""
    return Mesh((1, 5))


def marks_for_path(path):
    """Full mark set for a path src..victim with d = hops(end -> victim)."""
    victim = path[-1]
    marks = []
    n = len(path) - 1  # forwarding switches path[0..n-1]
    for i in range(n):
        start = path[i]
        end = path[i + 1] if i + 1 < n else None  # last mark: end = victim
        distance = n - 1 - i
        marks.append(EdgeMark(start, end if distance > 0 else None, distance))
    return marks


class TestChaining:
    def test_full_path_reconstructs_single_source(self, line):
        marks = marks_for_path([0, 1, 2, 3, 4])
        graph = reconstruct_paths(marks, line, 4)
        assert graph.sources() == {0}
        assert graph.depth() == 4

    def test_gap_truncates_frontier(self, line):
        # Missing mark at distance 2 breaks the chain; deepest reachable
        # start becomes the apparent source.
        marks = [m for m in marks_for_path([0, 1, 2, 3, 4]) if m.distance != 2]
        graph = reconstruct_paths(marks, line, 4)
        assert graph.sources() == {2}

    def test_disconnected_garbage_rejected(self, line):
        # A mark claiming a far edge with no chain to the victim never
        # attaches.
        marks = [EdgeMark(0, 1, 3)]
        graph = reconstruct_paths(marks, line, 4)
        assert graph.sources() == set()
        assert graph.edges == {}

    def test_level0_must_end_at_victim(self, line):
        marks = [EdgeMark(1, 2, 0)]  # claims last-hop switch 1, but 2 != victim 4
        graph = reconstruct_paths(marks, line, 4)
        assert graph.edges == {}

    def test_level0_neighbor_check(self, line):
        marks = [EdgeMark(0, None, 0)]  # node 0 is not adjacent to victim 4
        graph = reconstruct_paths(marks, line, 4)
        assert graph.edges == {}

    def test_non_physical_edge_rejected(self):
        mesh = Mesh((3, 3))
        victim = 8
        marks = [EdgeMark(7, None, 0), EdgeMark(0, 7, 1)]  # 0-7 not a link
        graph = reconstruct_paths(marks, mesh, victim)
        assert (0, 7) not in graph.edges


class TestMultiplePaths:
    def test_two_attackers_two_sources(self):
        mesh = Mesh((3, 3))
        victim = mesh.index((2, 2))
        # Two deterministic XY-ish paths.
        path_a = [mesh.index(c) for c in [(0, 0), (0, 1), (0, 2), (1, 2), (2, 2)]]
        path_b = [mesh.index(c) for c in [(2, 0), (2, 1), (2, 2)]]
        marks = marks_for_path(path_a) + marks_for_path(path_b)
        graph = reconstruct_paths(marks, mesh, victim)
        assert graph.sources() == {path_a[0], path_b[0]}

    def test_shared_suffix_does_not_merge_sources(self):
        mesh = Mesh((3, 3))
        victim = mesh.index((2, 2))
        path_a = [mesh.index(c) for c in [(0, 2), (1, 2), (2, 2)]]
        path_b = [mesh.index(c) for c in [(1, 1), (1, 2), (2, 2)]]
        marks = marks_for_path(path_a) + marks_for_path(path_b)
        graph = reconstruct_paths(marks, mesh, victim)
        assert graph.sources() == {path_a[0], path_b[0]}


class TestGraphQueries:
    def test_reached_at_levels(self, line):
        graph = reconstruct_paths(marks_for_path([0, 1, 2, 3, 4]), line, 4)
        assert graph.reached_at(0) == {3}
        assert graph.reached_at(3) == {0}

    def test_nodes_includes_victim(self, line):
        graph = reconstruct_paths(marks_for_path([2, 3, 4]), line, 4)
        assert 4 in graph.nodes()

    def test_empty_marks_empty_graph(self, line):
        graph = reconstruct_paths([], line, 4)
        assert graph.sources() == set()
        assert graph.depth() == 0
