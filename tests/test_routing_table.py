"""Unit tests for table-driven routing on irregular topologies."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.routing import TableRouter, build_shortest_path_tables, walk_route
from repro.routing.selection import RandomPolicy
from repro.topology import IrregularTopology, Mesh

from tests.conftest import first_candidate


@pytest.fixture
def graph():
    """0-1-2-3 path plus chord 0-2."""
    return IrregularTopology(4, [(0, 1), (1, 2), (2, 3), (0, 2)])


class TestTables:
    def test_next_hops_shorten_distance(self, graph):
        tables = build_shortest_path_tables(graph)
        for dst, per_node in tables.items():
            for node, hops in per_node.items():
                if node == dst:
                    assert hops == ()
                    continue
                for nxt in hops:
                    assert graph.min_hops(nxt, dst) == graph.min_hops(node, dst) - 1

    def test_multiple_shortest_next_hops(self):
        # Square 0-1, 1-3, 0-2, 2-3: from 0 to 3 both 1 and 2 are on
        # shortest paths.
        square = IrregularTopology(4, [(0, 1), (1, 3), (0, 2), (2, 3)])
        tables = build_shortest_path_tables(square)
        assert set(tables[3][0]) == {1, 2}

    def test_unreachable_gets_empty(self, graph):
        graph.fail_link(2, 3)
        tables = build_shortest_path_tables(graph)
        assert tables[3][0] == ()


class TestTableRouter:
    def test_routes_all_pairs_minimally(self, graph, rng):
        router = TableRouter(graph)
        select = RandomPolicy(rng).binder()
        for src in graph.nodes():
            for dst in graph.nodes():
                if src == dst:
                    continue
                path = walk_route(graph, router, src, dst, select)
                assert len(path) - 1 == graph.min_hops(src, dst)

    def test_rebuild_after_failure(self, graph):
        router = TableRouter(graph)
        graph.fail_link(0, 2)
        router.rebuild()
        path = walk_route(graph, router, 0, 2, first_candidate)
        assert path == [0, 1, 2]

    def test_validate_rejects_other_topology(self, graph):
        router = TableRouter(graph)
        with pytest.raises(RoutingError):
            router.validate(Mesh((2, 2)))

    def test_works_on_regular_topologies_too(self, mesh44, rng):
        router = TableRouter(mesh44)
        select = RandomPolicy(rng).binder()
        path = walk_route(mesh44, router, 0, 15, select)
        assert len(path) - 1 == mesh44.min_hops(0, 15)
