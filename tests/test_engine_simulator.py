"""Unit tests for the discrete-event simulator kernel."""

import math

import pytest

from repro.engine.simulator import Simulator
from repro.errors import SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_relative(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_schedule_absolute(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(4.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [4.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_into_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_nan_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(math.nan, lambda: None)


class TestExecution:
    def test_events_fire_in_order_and_advance_clock(self):
        sim = Simulator()
        times = []
        for t in (3.0, 1.0, 2.0):
            sim.schedule(t, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 2.0, 3.0]
        assert sim.now == 3.0

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(sim.now)
            if depth:
                sim.schedule(1.0, lambda: chain(depth - 1))

        sim.schedule(0.0, lambda: chain(3))
        sim.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_run_until_stops_and_lands_on_end_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run_until(5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run_until(20.0)
        assert fired == [1, 10]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(ev)
        sim.cancel(ev)  # idempotent
        sim.run()
        assert fired == []

    def test_max_events_guard(self):
        sim = Simulator(max_events=100)

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run()

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 5

    def test_reset(self):
        sim = Simulator(seed=1)
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.events_executed == 0
        assert not sim.queue


class TestRng:
    def test_streams_reproducible_across_instances(self):
        a = Simulator(seed=9).rng.stream("x").integers(0, 1000, size=5)
        b = Simulator(seed=9).rng.stream("x").integers(0, 1000, size=5)
        assert list(a) == list(b)

    def test_streams_independent_by_name(self):
        sim = Simulator(seed=9)
        a = sim.rng.stream("a").integers(0, 10**9)
        b = sim.rng.stream("b").integers(0, 10**9)
        assert a != b
