"""Integration tests for the fabric: injection, delivery, drops, failures."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network import Fabric, FabricConfig, StoreAndForward
from repro.network.packet import PacketKind
from repro.routing import (
    DimensionOrderRouter,
    FullyAdaptiveRouter,
    LeastCongestedPolicy,
    MinimalAdaptiveRouter,
    RandomPolicy,
)
from repro.topology import Hypercube, Mesh, Torus


def build(topology=None, router=None, **cfg):
    topology = topology if topology is not None else Mesh((4, 4))
    router = router if router is not None else DimensionOrderRouter()
    return Fabric(topology, router, config=FabricConfig(**cfg))


class TestDelivery:
    def test_single_packet_delivered(self):
        fab = build()
        received = []
        fab.add_delivery_handler(15, lambda ev: received.append(ev))
        fab.inject(fab.make_packet(0, 15))
        fab.run()
        assert len(received) == 1
        assert received[0].packet.hops == fab.topology.min_hops(0, 15)
        assert fab.counters["delivered"] == 1

    def test_local_delivery_without_hops(self):
        fab = build()
        received = []
        fab.add_delivery_handler(5, lambda ev: received.append(ev))
        fab.inject(fab.make_packet(5, 5))
        fab.run()
        assert received[0].packet.hops == 0

    def test_latency_grows_with_distance(self):
        fab = build()
        near, far = [], []
        fab.add_delivery_handler(1, lambda ev: near.append(ev.packet.latency))
        fab.add_delivery_handler(15, lambda ev: far.append(ev.packet.latency))
        fab.inject(fab.make_packet(0, 1))
        fab.inject(fab.make_packet(0, 15))
        fab.run()
        assert far[0] > near[0]

    def test_many_packets_all_arrive(self):
        fab = build(topology=Torus((4, 4)))
        rng = np.random.default_rng(0)
        n = 200
        for i in range(n):
            src, dst = rng.integers(16, size=2)
            while dst == src:
                dst = rng.integers(16)
            fab.inject(fab.make_packet(int(src), int(dst)), delay=float(i) * 0.01)
        fab.run()
        assert fab.counters["delivered"] == n
        assert fab.counters["dropped"] == 0

    def test_stats_summary_fields(self):
        fab = build()
        fab.inject(fab.make_packet(0, 15))
        fab.run()
        stats = fab.stats_summary()
        assert stats["injected"] == 1
        assert stats["delivered"] == 1
        assert stats["mean_hops"] == 6


class TestSpoofing:
    def test_spoofed_source_preserved_in_header(self):
        fab = build()
        received = []
        fab.add_delivery_handler(15, lambda ev: received.append(ev.packet))
        fab.inject(fab.make_packet(0, 15, spoofed_src_ip=0xDEADBEEF))
        fab.run()
        assert received[0].header.src == 0xDEADBEEF
        assert received[0].true_source == 0  # ground truth intact

    def test_honest_source_by_default(self):
        fab = build()
        p = fab.make_packet(3, 15)
        assert p.header.src == fab.addresses.ip_of(3)


class TestDrops:
    def test_ttl_expiry_drops(self):
        fab = build(default_ttl=2)
        drops = []
        fab.add_drop_handler(lambda p, n, r: drops.append(r))
        fab.inject(fab.make_packet(0, 15))  # needs 6 hops
        fab.run()
        assert fab.counters["dropped_ttl_expired"] == 1
        assert drops == ["ttl_expired"]
        assert fab.counters["delivered"] == 0

    def test_unroutable_drops_on_deterministic_fault(self):
        topo = Mesh((4, 4))
        topo.fail_link(0, 1)
        topo.fail_link(0, 4)
        fab = Fabric(topo, DimensionOrderRouter())
        fab.inject(fab.make_packet(0, 15))
        fab.run()
        assert fab.counters["dropped_unroutable"] == 1

    def test_injection_filter_blocks(self):
        fab = build()
        fab.injection_filter = lambda packet, node: node != 0
        fab.inject(fab.make_packet(0, 15))
        fab.inject(fab.make_packet(1, 15))
        fab.run()
        assert fab.counters["dropped_filtered_at_source"] == 1
        assert fab.counters["delivered"] == 1


class TestLinkFailureMidRun:
    def test_fail_link_drops_queued_and_blocks_future(self):
        fab = build()
        fab.run_until(0.0)
        fab.fail_link(0, 1)
        fab.inject(fab.make_packet(0, 1))
        fab.run()
        # DOR's unique hop is dead -> unroutable.
        assert fab.counters["dropped_unroutable"] == 1

    def test_restore_link_recovers(self):
        fab = build()
        fab.fail_link(0, 1)
        fab.restore_link(0, 1)
        fab.inject(fab.make_packet(0, 1))
        fab.run()
        assert fab.counters["delivered"] == 1


class TestAdaptiveCongestion:
    def test_congestion_view_reflects_queues(self):
        fab = build()
        assert fab.congestion(0, 1) == 0.0
        for i in range(10):
            fab.inject(fab.make_packet(0, 3, payload_bytes=0))
        fab.run_until(0.005)
        assert fab.congestion(0, 1) > 0.0

    def test_least_congested_spreads_paths(self):
        topo = Mesh((4, 4))
        fab = Fabric(topo, MinimalAdaptiveRouter(),
                     config=FabricConfig(trace_packets=True))
        fab.selection = LeastCongestedPolicy(fab.congestion,
                                             np.random.default_rng(0))
        paths = set()
        fab.add_delivery_handler(15, lambda ev: paths.add(tuple(ev.packet.trace)))
        for i in range(50):
            fab.inject(fab.make_packet(0, 15), delay=i * 0.001)
        fab.run()
        assert len(paths) > 1  # adaptivity is live


class TestValidation:
    def test_bad_nodes_rejected(self):
        fab = build()
        with pytest.raises(ConfigurationError):
            fab.make_packet(0, 99)
        with pytest.raises(ConfigurationError):
            fab.inject(fab.make_packet(0, 15), at_node=99)

    def test_fabric_config_validation(self):
        with pytest.raises(ConfigurationError):
            FabricConfig(link_bandwidth=0)
        with pytest.raises(ConfigurationError):
            FabricConfig(buffer_capacity=0)
        with pytest.raises(ConfigurationError):
            FabricConfig(default_ttl=300)


class TestStoreAndForwardMode:
    def test_saf_slower_than_vct(self):
        lat = {}
        for name, service in (("saf", StoreAndForward()), ("vct", None)):
            topo = Mesh((4, 4))
            fab = Fabric(topo, DimensionOrderRouter(), service=service)
            fab.add_delivery_handler(15, lambda ev, n=name: lat.__setitem__(
                n, ev.packet.latency))
            fab.inject(fab.make_packet(0, 15, payload_bytes=400))
            fab.run()
        assert lat["saf"] > lat["vct"]
