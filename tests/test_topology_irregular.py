"""Unit tests for irregular topologies (paper §6.3)."""

import pytest

from repro.errors import TopologyError
from repro.topology import IrregularTopology


@pytest.fixture
def tri():
    """Triangle plus a pendant: 0-1, 1-2, 2-0, 2-3."""
    return IrregularTopology(4, [(0, 1), (1, 2), (2, 0), (2, 3)])


class TestConstruction:
    def test_neighbors(self, tri):
        assert tri.neighbors(2) == (0, 1, 3)
        assert tri.neighbors(3) == (2,)

    def test_duplicate_edges_collapse(self):
        topo = IrregularTopology(3, [(0, 1), (1, 0), (1, 2)])
        assert len(topo.to_edge_list()) == 2

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            IrregularTopology(3, [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(TopologyError):
            IrregularTopology(3, [(0, 3)])

    def test_empty_edges_rejected(self):
        with pytest.raises(TopologyError):
            IrregularTopology(3, [])


class TestMetrics:
    def test_degree(self, tri):
        assert tri.degree() == 3

    def test_diameter(self, tri):
        assert tri.diameter() == 2

    def test_min_hops(self, tri):
        assert tri.min_hops(0, 3) == 2
        assert tri.min_hops(1, 1) == 0


class TestDdpmUnsupported:
    """The paper's §6.3 point: no coordinate regularity, no DDPM."""

    def test_distance_vector_raises(self, tri):
        with pytest.raises(TopologyError):
            tri.distance_vector(0, 3)

    def test_hop_delta_raises(self, tri):
        with pytest.raises(TopologyError):
            tri.hop_delta(0, 1)

    def test_resolve_source_raises(self, tri):
        with pytest.raises(TopologyError):
            tri.resolve_source(0, (1,))

    def test_step_raises(self, tri):
        with pytest.raises(TopologyError):
            tri.step(0, 0, 1)

    def test_ddpm_layout_refuses(self, tri):
        from repro.errors import MarkingError
        from repro.marking.ddpm_layout import DdpmLayout

        with pytest.raises(MarkingError):
            DdpmLayout.for_topology(tri)
