"""Unit tests for the event queue."""

import pytest

from repro.engine.events import EventQueue
from repro.errors import SimulationError


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(3.0, lambda: fired.append(3))
        q.push(1.0, lambda: fired.append(1))
        q.push(2.0, lambda: fired.append(2))
        while q:
            q.pop().callback()
        assert fired == [1, 2, 3]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        fired = []
        q.push(1.0, lambda: fired.append("low"), priority=5)
        q.push(1.0, lambda: fired.append("high"), priority=0)
        q.pop().callback()
        assert fired == ["high"]

    def test_insertion_order_breaks_full_ties(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.push(1.0, lambda i=i: fired.append(i))
        while q:
            q.pop().callback()
        assert fired == [0, 1, 2, 3, 4]

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        fired = []
        ev = q.push(1.0, lambda: fired.append("cancelled"))
        q.push(2.0, lambda: fired.append("kept"))
        ev.cancel()
        q.note_cancelled()
        assert len(q) == 1
        q.pop().callback()
        assert fired == ["kept"]

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(7.0, lambda: None)
        assert q.peek_time() == 7.0

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        ev.cancel()
        q.note_cancelled()
        assert q.peek_time() == 2.0

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.clear()
        assert not q
        assert q.peek_time() is None

    def test_len_tracks_live_events(self):
        q = EventQueue()
        events = [q.push(float(i), lambda: None) for i in range(4)]
        assert len(q) == 4
        events[0].cancel()
        q.note_cancelled()
        assert len(q) == 3
