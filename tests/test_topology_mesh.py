"""Unit tests for the mesh topology."""

import pytest

from repro.errors import TopologyError
from repro.topology import Mesh
from repro.topology.properties import bfs_distances, diameter


class TestConstruction:
    def test_node_count(self):
        assert Mesh((4, 4)).num_nodes == 16
        assert Mesh((2, 3, 4)).num_nodes == 24

    def test_single_node_rejected(self):
        with pytest.raises(TopologyError):
            Mesh((1,))

    def test_bad_dims_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Mesh((4, 0))


class TestNeighbors:
    def test_interior_node_has_2n_neighbors(self):
        mesh = Mesh((4, 4))
        interior = mesh.index((1, 1))
        assert len(mesh.neighbors(interior)) == 4

    def test_corner_has_n_neighbors(self):
        mesh = Mesh((4, 4))
        assert len(mesh.neighbors(mesh.index((0, 0)))) == 2

    def test_neighbors_differ_in_one_coordinate_by_one(self):
        mesh = Mesh((3, 3, 3))
        for node in mesh.nodes():
            for nb in mesh.neighbors(node):
                diff = [abs(a - b) for a, b in
                        zip(mesh.coord(node), mesh.coord(nb))]
                assert sum(diff) == 1

    def test_no_wraparound(self):
        mesh = Mesh((4, 4))
        west_edge = mesh.index((2, 0))
        east_edge = mesh.index((2, 3))
        assert east_edge not in mesh.neighbors(west_edge)

    def test_symmetry(self):
        mesh = Mesh((3, 5))
        for node in mesh.nodes():
            for nb in mesh.neighbors(node):
                assert node in mesh.neighbors(nb)


class TestMetrics:
    def test_paper_figure1a_values(self):
        # Paper: 4x4 2-D mesh has degree four and diameter six.
        mesh = Mesh((4, 4))
        assert mesh.degree() == 4
        assert mesh.diameter() == 6

    def test_degree_matches_graph(self):
        mesh = Mesh((4, 5))
        assert mesh.degree() == max(len(mesh.neighbors(n)) for n in mesh.nodes())

    def test_diameter_matches_bfs(self):
        mesh = Mesh((3, 4))
        assert mesh.diameter() == diameter(mesh)

    def test_min_hops_equals_bfs(self):
        mesh = Mesh((3, 4))
        dist = bfs_distances(mesh, 0)
        for node, d in dist.items():
            assert mesh.min_hops(0, node) == d


class TestStep:
    def test_step_moves_one(self):
        mesh = Mesh((4, 4))
        node = mesh.index((1, 1))
        assert mesh.coord(mesh.step(node, 0, 1)) == (2, 1)
        assert mesh.coord(mesh.step(node, 1, -1)) == (1, 0)

    def test_step_off_edge_is_none(self):
        mesh = Mesh((4, 4))
        assert mesh.step(mesh.index((0, 0)), 0, -1) is None
        assert mesh.step(mesh.index((3, 3)), 1, 1) is None

    def test_step_invalid_axis(self):
        mesh = Mesh((4, 4))
        with pytest.raises(TopologyError):
            mesh.step(0, 2, 1)

    def test_step_invalid_direction(self):
        mesh = Mesh((4, 4))
        with pytest.raises(TopologyError):
            mesh.step(0, 0, 2)


class TestOffsetAlgebra:
    def test_distance_vector_is_plain_difference(self):
        mesh = Mesh((4, 4))
        src, dst = mesh.index((1, 1)), mesh.index((2, 3))
        assert mesh.distance_vector(src, dst) == (1, 2)

    def test_hop_delta_unit_vectors(self):
        mesh = Mesh((4, 4))
        u = mesh.index((1, 1))
        assert mesh.hop_delta(u, mesh.index((1, 2))) == (0, 1)
        assert mesh.hop_delta(u, mesh.index((0, 1))) == (-1, 0)

    def test_hop_delta_rejects_non_hop(self):
        mesh = Mesh((4, 4))
        with pytest.raises(TopologyError):
            mesh.hop_delta(0, 5)  # diagonal

    def test_resolve_source_inverts_distance_vector(self):
        mesh = Mesh((4, 5))
        for src in mesh.nodes():
            for dst in (0, 7, 19):
                v = mesh.distance_vector(src, dst)
                assert mesh.resolve_source(dst, v) == src

    def test_resolve_source_out_of_mesh_rejected(self):
        mesh = Mesh((4, 4))
        with pytest.raises(TopologyError):
            mesh.resolve_source(0, (1, 1))  # source would be (-1, -1)

    def test_identity_offset(self):
        assert Mesh((4, 4)).identity_offset() == (0, 0)

    def test_combine_is_addition(self):
        mesh = Mesh((4, 4))
        assert mesh.combine_offsets((1, -1), (0, 1)) == (1, 0)


class TestExport:
    def test_edge_count_2d(self):
        # n x m mesh: m(n-1) + n(m-1) undirected links.
        mesh = Mesh((4, 4))
        assert len(mesh.to_edge_list()) == 2 * 4 * 3

    def test_networkx_roundtrip(self):
        nx_graph = Mesh((3, 3)).to_networkx()
        assert nx_graph.number_of_nodes() == 9
        assert nx_graph.number_of_edges() == 12
