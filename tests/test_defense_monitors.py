"""Unit and integration tests for trusted monitor switches (§6.1)."""

import numpy as np
import pytest

from repro.defense.monitors import (
    DistributedRateDetector,
    is_monitor_cut,
    monitor_cut_for_victim,
)
from repro.errors import ConfigurationError
from repro.marking import DdpmScheme
from repro.network import Fabric
from repro.routing import FullyAdaptiveRouter, MinimalAdaptiveRouter, RandomPolicy
from repro.topology import FatTree, Mesh, Torus


class TestMonitorCut:
    def test_neighborhood_is_a_cut(self, mesh44):
        victim = mesh44.index((1, 1))
        assert is_monitor_cut(mesh44, mesh44.neighbors(victim), victim)

    def test_missing_neighbor_breaks_cut(self, mesh44):
        victim = mesh44.index((1, 1))
        monitors = set(mesh44.neighbors(victim))
        monitors.pop()
        assert not is_monitor_cut(mesh44, monitors, victim)

    def test_victim_cannot_monitor_itself(self, mesh44):
        with pytest.raises(ConfigurationError):
            is_monitor_cut(mesh44, [5], 5)

    def test_cut_for_corner_victim(self, mesh44):
        victim = mesh44.index((0, 0))
        monitors = monitor_cut_for_victim(mesh44, victim)
        assert monitors == frozenset(mesh44.neighbors(victim))
        assert len(monitors) == 2

    def test_pruning_uses_link_failures(self):
        # With one victim link failed, the remaining neighbors suffice.
        mesh = Mesh((4, 4))
        victim = mesh.index((1, 1))
        dead = mesh.index((0, 1))
        mesh.fail_link(victim, dead)
        monitors = monitor_cut_for_victim(mesh, victim)
        assert dead not in monitors
        assert len(monitors) == 3

    def test_candidate_pool_respected(self, mesh44):
        victim = mesh44.index((1, 1))
        with pytest.raises(ConfigurationError):
            monitor_cut_for_victim(mesh44, victim, candidates=[0])  # not a cut

    def test_fat_tree_host_needs_one_monitor(self):
        # A host hangs off a single edge switch: the minimal cut is size 1.
        ft = FatTree(4)
        monitors = monitor_cut_for_victim(ft, 0)
        assert len(monitors) == 1
        assert ft.tier_of(next(iter(monitors))) == "edge"

    def test_torus_interior_cut_is_degree(self):
        torus = Torus((5, 5))
        monitors = monitor_cut_for_victim(torus, 12)
        assert len(monitors) == 4


class TestDistributedDetection:
    def _build(self, threshold=30.0):
        topology = Mesh((6, 6))
        fabric = Fabric(topology, MinimalAdaptiveRouter(),
                        selection=RandomPolicy(np.random.default_rng(0)))
        victim = topology.index((3, 3))
        monitors = monitor_cut_for_victim(topology, victim)
        detector = DistributedRateDetector(fabric, victim, monitors,
                                           window=0.5, threshold_rate=threshold)
        return fabric, victim, monitors, detector

    def test_every_packet_to_victim_is_observed(self):
        fabric, victim, monitors, detector = self._build()
        for i in range(40):
            src = (7 * i) % 36
            if src == victim:
                continue
            fabric.inject(fabric.make_packet(src, victim), delay=i * 0.1)
        fabric.run()
        delivered = fabric.counters["delivered"]
        assert detector.transits_seen == delivered  # the cut property, live

    def test_flood_raises_alarm_quiet_does_not(self):
        fabric, victim, monitors, detector = self._build(threshold=30.0)
        # Quiet phase.
        for i in range(5):
            fabric.inject(fabric.make_packet(0, victim), delay=i * 0.5)
        fabric.run()
        assert not detector.under_attack
        # Flood phase.
        for i in range(200):
            fabric.inject(fabric.make_packet(5, victim), delay=5.0 + i * 0.005)
        fabric.run()
        assert detector.under_attack
        assert detector.alarm_time is not None and detector.alarm_time >= 5.0

    def test_traffic_to_other_nodes_ignored(self):
        fabric, victim, monitors, detector = self._build()
        other = 0
        for i in range(100):
            fabric.inject(fabric.make_packet(5, other), delay=i * 0.01)
        fabric.run()
        assert detector.transits_seen == 0
        assert not detector.under_attack

    def test_per_monitor_counts_cover_the_cut(self):
        fabric, victim, monitors, detector = self._build()
        rng = np.random.default_rng(1)
        for i in range(200):
            src = int(rng.integers(36))
            if src == victim:
                continue
            fabric.inject(fabric.make_packet(src, victim), delay=i * 0.02)
        fabric.run()
        counts = detector.per_monitor_counts()
        assert set(counts) == set(monitors)
        assert sum(1 for c in counts.values() if c > 0) >= 3  # load spreads

    def test_validation(self):
        fabric, victim, monitors, _ = self._build()
        with pytest.raises(ConfigurationError):
            DistributedRateDetector(fabric, victim, [], window=1.0,
                                    threshold_rate=1.0)
        with pytest.raises(ConfigurationError):
            DistributedRateDetector(fabric, victim, [victim], window=1.0,
                                    threshold_rate=1.0)

    def test_monitor_identification_combo(self):
        """Monitors can themselves run DDPM identification on transit
        packets — identification without victim cooperation."""
        topology = Mesh((6, 6))
        scheme = DdpmScheme()
        fabric = Fabric(topology, FullyAdaptiveRouter(), marking=scheme,
                        selection=RandomPolicy(np.random.default_rng(2)))
        victim = topology.index((3, 3))
        monitors = monitor_cut_for_victim(topology, victim)
        seen_sources = set()

        def observe(packet, node, time):
            if packet.destination_node != victim:
                return
            # A transit monitor decodes the source relative to ITSELF: the
            # accumulated vector so far is (monitor - source).
            seen_sources.add(scheme.identify(packet, node))

        for monitor in monitors:
            fabric.add_transit_observer(monitor, observe)
        attacker = topology.index((0, 5))
        for i in range(20):
            fabric.inject(fabric.make_packet(attacker, victim,
                                             spoofed_src_ip=0x01020304),
                          delay=i * 0.05)
        fabric.run()
        assert attacker in seen_sources
