"""Unit tests for identification scoring metrics."""

import pytest

from repro.defense.metrics import (
    blocking_collateral,
    packets_until_identified,
    score_identification,
)
from repro.errors import ConfigurationError
from repro.marking import DdpmScheme
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import DimensionOrderRouter, walk_route
from repro.topology import Mesh


class TestScore:
    def test_exact(self):
        score = score_identification({1, 2}, {1, 2})
        assert score.precision == 1.0 and score.recall == 1.0
        assert score.exact and score.f1 == 1.0

    def test_false_positives_hurt_precision(self):
        score = score_identification({1, 2, 3, 4}, {1, 2})
        assert score.precision == 0.5
        assert score.recall == 1.0
        assert score.false_positives == 2
        assert not score.exact

    def test_false_negatives_hurt_recall(self):
        score = score_identification({1}, {1, 2, 3, 4})
        assert score.recall == 0.25
        assert score.false_negatives == 3

    def test_empty_suspects(self):
        score = score_identification(set(), {1})
        assert score.precision == 0.0 and score.recall == 0.0
        assert score.f1 == 0.0

    def test_f1_harmonic_mean(self):
        score = score_identification({1, 5}, {1, 2})
        assert score.f1 == pytest.approx(0.5)


class TestPacketsUntilIdentified:
    def _packets(self, topology, scheme, src, dst, count):
        packets = []
        for _ in range(count):
            path = walk_route(topology, DimensionOrderRouter(), src, dst,
                              lambda c, cur: c[0])
            p = Packet(IPHeader(1, 2), src, dst)
            scheme.on_inject(p, src)
            for u, v in zip(path[:-1], path[1:]):
                scheme.on_hop(p, u, v)
            packets.append(p)
        return packets

    def test_ddpm_needs_exactly_one(self, mesh44):
        scheme = DdpmScheme()
        scheme.attach(mesh44)
        packets = self._packets(mesh44, scheme, 0, 15, 5)
        analysis = scheme.new_victim_analysis(15)
        assert packets_until_identified(analysis, packets, {0}) == 1

    def test_budget_exhaustion_returns_none(self, mesh44):
        scheme = DdpmScheme()
        scheme.attach(mesh44)
        packets = self._packets(mesh44, scheme, 0, 15, 3)
        analysis = scheme.new_victim_analysis(15)
        # Demand an attacker that never sends.
        assert packets_until_identified(analysis, packets, {7}) is None

    def test_require_exact_defers_success(self, mesh44):
        scheme = DdpmScheme()
        scheme.attach(mesh44)
        # Interleave a second source: exact identification of {0} alone
        # becomes impossible once 3's packet is observed.
        packets = self._packets(mesh44, scheme, 3, 15, 1)
        packets += self._packets(mesh44, scheme, 0, 15, 1)
        analysis = scheme.new_victim_analysis(15)
        assert packets_until_identified(analysis, packets, {0},
                                        require_exact=True) is None

    def test_check_every_validated(self, mesh44):
        scheme = DdpmScheme()
        scheme.attach(mesh44)
        analysis = scheme.new_victim_analysis(15)
        with pytest.raises(ConfigurationError):
            packets_until_identified(analysis, [], {0}, check_every=0)

    def test_empty_attackers_rejected(self, mesh44):
        scheme = DdpmScheme()
        scheme.attach(mesh44)
        analysis = scheme.new_victim_analysis(15)
        with pytest.raises(ConfigurationError):
            packets_until_identified(analysis, [], set())


class TestBlockingCollateral:
    def test_perfect_block(self):
        out = blocking_collateral(blocked={1, 2}, attackers={1, 2},
                                  legit_sources=range(10))
        assert out["blocked_attackers"] == 2
        assert out["blocked_innocents"] == 0
        assert out["collateral_rate"] == 0.0
        assert out["containment_rate"] == 1.0

    def test_collateral_counted(self):
        out = blocking_collateral(blocked={1, 2, 3}, attackers={1},
                                  legit_sources=range(10))
        assert out["blocked_innocents"] == 2
        assert out["collateral_rate"] == pytest.approx(2 / 9)

    def test_missed_attackers(self):
        out = blocking_collateral(blocked=set(), attackers={1, 2},
                                  legit_sources=range(10))
        assert out["missed_attackers"] == 2
        assert out["containment_rate"] == 0.0
