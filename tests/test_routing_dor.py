"""Unit tests for dimension-order routing."""

import pytest

from repro.errors import RoutingError, UnroutablePacketError
from repro.routing import DimensionOrderRouter, walk_route
from repro.routing.base import RouteState
from repro.topology import Hypercube, Mesh, Torus

from tests.conftest import first_candidate


class TestMeshXY:
    def test_xy_routes_row_then_column(self, mesh44):
        # Paper Figure 2(a): S1 (2,0) -> D (1,2) via the row, then the column.
        router = DimensionOrderRouter(axis_order=(1, 0))
        path = walk_route(mesh44, router, mesh44.index((2, 0)), mesh44.index((1, 2)),
                          first_candidate)
        coords = [mesh44.coord(n) for n in path]
        assert coords == [(2, 0), (2, 1), (2, 2), (1, 2)]

    def test_xy_single_turn(self, mesh44):
        # XY paths turn at most once: column changes never precede row moves
        # once the column leg started.
        router = DimensionOrderRouter(axis_order=(1, 0))
        path = walk_route(mesh44, router, 0, 15, first_candidate)
        coords = [mesh44.coord(n) for n in path]
        turns = 0
        for i in range(1, len(coords) - 1):
            prev_axis = 0 if coords[i][0] != coords[i - 1][0] else 1
            next_axis = 0 if coords[i + 1][0] != coords[i][0] else 1
            if prev_axis != next_axis:
                turns += 1
        assert turns <= 1

    def test_path_is_minimal(self, mesh44):
        router = DimensionOrderRouter()
        for dst in (3, 7, 12, 15):
            path = walk_route(mesh44, router, 0, dst, first_candidate)
            assert len(path) - 1 == mesh44.min_hops(0, dst)

    def test_deterministic_single_candidate(self, mesh44):
        router = DimensionOrderRouter()
        state = RouteState(destination=15)
        options = router.candidates(mesh44, 0, state)
        assert len(options) == 1

    def test_blocked_by_failed_link(self, mesh44):
        # Paper Figure 2(b): XY cannot route around a failed east link.
        router = DimensionOrderRouter(axis_order=(1, 0))
        s1 = mesh44.index((2, 0))
        mesh44.fail_link(s1, mesh44.index((2, 1)))
        with pytest.raises(UnroutablePacketError):
            walk_route(mesh44, router, s1, mesh44.index((1, 2)), first_candidate)

    def test_invalid_axis_order(self, mesh44):
        router = DimensionOrderRouter(axis_order=(0, 0))
        with pytest.raises(RoutingError):
            router.validate(mesh44)


class TestTorusDor:
    def test_takes_wraparound_shortcut(self, torus44):
        router = DimensionOrderRouter()
        path = walk_route(torus44, router, torus44.index((0, 0)),
                          torus44.index((3, 3)), first_candidate)
        assert len(path) - 1 == 2  # wraps both dimensions

    def test_all_pairs_minimal(self, torus44):
        router = DimensionOrderRouter()
        for src in torus44.nodes():
            for dst in torus44.nodes():
                if src == dst:
                    continue
                path = walk_route(torus44, router, src, dst, first_candidate)
                assert len(path) - 1 == torus44.min_hops(src, dst)


class TestEcube:
    def test_corrects_highest_axis_first(self, cube4):
        router = DimensionOrderRouter()
        path = walk_route(cube4, router, 0b0000, 0b1011, first_candidate)
        assert path == [0b0000, 0b1000, 0b1010, 0b1011]

    def test_all_pairs_minimal(self, cube4):
        router = DimensionOrderRouter()
        for src in (0, 5, 9):
            for dst in cube4.nodes():
                if src == dst:
                    continue
                path = walk_route(cube4, router, src, dst, first_candidate)
                assert len(path) - 1 == cube4.min_hops(src, dst)
