"""Tests for the parallel experiment runner, result cache, and sweeps.

The two hard requirements from the runner's contract:

* **Determinism** — ``n_jobs`` must never change results: parallel and
  serial execution of the same seed list produce identical
  ``ExperimentResult`` records, in the same order.
* **Cache correctness** — identical ``(config, seed, code-version)``
  triples hit; any config change, seed change, or code-version change
  misses.
"""

import dataclasses
import json

import pytest

from repro.core.config import (
    ExperimentConfig,
    MarkingSpec,
    RoutingSpec,
    SelectionSpec,
    TopologySpec,
)
from repro.core.replication import replicate
from repro.errors import ConfigurationError
from repro.runner import ParallelRunner, ResultCache, RunReport, SweepSpec

SEEDS = [1, 2, 3]


@pytest.fixture
def config():
    return ExperimentConfig(
        topology=TopologySpec("mesh", (4, 4)),
        routing=RoutingSpec("minimal-adaptive"),
        marking=MarkingSpec("ddpm", probability=0.2),
        selection=SelectionSpec("random"),
        num_attackers=2, duration=1.0,
    )


def dicts(results):
    return [r.to_dict() for r in results]


class TestDeterminism:
    def test_parallel_matches_serial_bit_identical(self, config):
        serial = ParallelRunner(n_jobs=1).run_seeds(config, SEEDS)
        parallel = ParallelRunner(n_jobs=3).run_seeds(config, SEEDS)
        assert dicts(serial.results) == dicts(parallel.results)
        assert [r.seed for r in parallel.results] == SEEDS

    def test_replicate_n_jobs_matches_serial(self, config):
        serial = replicate(config, SEEDS)
        parallel = replicate(config, SEEDS, n_jobs=3)
        assert dicts(serial) == dicts(parallel)

    def test_runner_matches_legacy_replicate(self, config):
        legacy = replicate(config, SEEDS)
        report = ParallelRunner(n_jobs=1).run_seeds(config, SEEDS)
        assert dicts(legacy) == dicts(report.results)

    def test_parallel_sweep_matches_serial(self, config):
        spec = SweepSpec.grid(config, {"marking": ["ddpm", "dpm"]},
                              seeds=[1, 2])
        serial = ParallelRunner(n_jobs=1).run_sweep(spec)
        parallel = ParallelRunner(n_jobs=2).run_sweep(spec)
        assert dicts(serial.results) == dicts(parallel.results)


class TestRunnerBasics:
    def test_invalid_n_jobs(self):
        for bad in (0, -1, 1.5, True, "4"):
            with pytest.raises(ConfigurationError):
                ParallelRunner(n_jobs=bad)

    def test_empty_batch_rejected(self, config):
        with pytest.raises(ConfigurationError):
            ParallelRunner().run_batch([])
        with pytest.raises(ConfigurationError):
            ParallelRunner().run_seeds(config, [])

    def test_run_single(self, config):
        result = ParallelRunner().run(config.with_seed(7))
        assert result.seed == 7

    def test_report_accounting_without_cache(self, config):
        report = ParallelRunner().run_seeds(config, SEEDS)
        assert report.simulated == len(SEEDS)
        assert report.cache_hits == 0 and report.cache_misses == 3
        assert len(report) == 3 and list(report) == report.results
        assert "simulated 3" in report.describe()

    def test_report_summaries(self, config):
        report = ParallelRunner().run_seeds(config, range(4))
        summary = report.summarize("precision")
        assert summary.n == 4 and summary.mean == 1.0
        by_marking = report.summarize_by(("marking",), "precision")
        assert by_marking[("ddpm",)].mean == 1.0


class TestCache:
    def test_miss_then_hit(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        cold = ParallelRunner(cache=cache).run_seeds(config, SEEDS)
        assert cold.simulated == 3 and cold.cache_hits == 0
        warm = ParallelRunner(cache=cache).run_seeds(config, SEEDS)
        assert warm.simulated == 0 and warm.cache_hits == 3
        assert dicts(cold.results) == dicts(warm.results)
        assert cache.stats.hits == 3 and cache.stats.misses == 3
        assert cache.stats.stores == 3 and len(cache) == 3

    def test_config_change_misses(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        ParallelRunner(cache=cache).run_seeds(config, SEEDS)
        changed = dataclasses.replace(config, duration=1.5)
        report = ParallelRunner(cache=cache).run_seeds(changed, SEEDS)
        assert report.simulated == 3 and report.cache_hits == 0

    def test_seed_change_misses(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        ParallelRunner(cache=cache).run_seeds(config, [1, 2])
        report = ParallelRunner(cache=cache).run_seeds(config, [2, 3])
        assert report.cache_hits == 1 and report.simulated == 1

    def test_code_version_change_invalidates(self, config, tmp_path):
        ParallelRunner(cache=ResultCache(tmp_path, code_version="v1")) \
            .run_seeds(config, [1])
        report = ParallelRunner(cache=ResultCache(tmp_path, code_version="v2")) \
            .run_seeds(config, [1])
        assert report.simulated == 1 and report.cache_hits == 0

    def test_corrupt_entry_is_a_miss_and_repaired(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(cache=cache)
        runner.run_seeds(config, [1])
        path = cache.path_for(config.with_seed(1))
        path.write_text("{not json")
        report = runner.run_seeds(config, [1])
        assert report.simulated == 1 and cache.stats.invalid == 1
        # ...and the entry was rewritten: next run hits.
        assert runner.run_seeds(config, [1]).cache_hits == 1

    def test_entry_payload_shape(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        ParallelRunner(cache=cache).run(config)
        entry = json.loads(cache.path_for(config).read_text())
        assert entry["key"] == cache.key_for(config)
        assert entry["config"] == config.to_dict()
        assert entry["code_version"] == cache.code_version

    def test_clear(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        ParallelRunner(cache=cache).run_seeds(config, SEEDS)
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_cache_env_version_override(self, config, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_VERSION", "pinned-sha")
        assert ResultCache(tmp_path).code_version == "pinned-sha"

    def test_empty_root_rejected(self):
        with pytest.raises(ConfigurationError):
            ResultCache("")

    def test_stats_snapshot_delta(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(cache=cache)
        runner.run_seeds(config, SEEDS)
        before = cache.stats.snapshot()
        runner.run_seeds(config, SEEDS)
        delta = cache.stats.since(before)
        assert delta.hits == 3 and delta.misses == 0


class TestSweepSpec:
    def test_grid_expansion_order(self, config):
        spec = SweepSpec.grid(config,
                              {"marking": ["ddpm", "dpm"],
                               "num_attackers": [1, 2]},
                              seeds=[10, 11])
        configs = spec.expand()
        assert len(spec) == 8 and len(configs) == 8
        # overrides-major (grid order), seeds-minor
        assert [(c.marking.name, c.num_attackers, c.seed) for c in configs[:4]] \
            == [("ddpm", 1, 10), ("ddpm", 1, 11), ("ddpm", 2, 10), ("ddpm", 2, 11)]

    def test_string_and_dict_coercion(self, config):
        spec = SweepSpec(config, overrides=(
            {"routing": "xy", "selection": "first"},
            {"marking": {"name": "dpm", "probability": 0.4}},
        ), seeds=[0])
        first, second = spec.expand()
        assert first.routing == RoutingSpec("xy")
        assert first.selection == SelectionSpec("first")
        assert second.marking == MarkingSpec("dpm", probability=0.4)

    def test_topology_override_requires_dims(self, config):
        spec = SweepSpec(config, overrides=({"topology": "torus"},), seeds=[0])
        with pytest.raises(ConfigurationError, match="dims"):
            spec.expand()
        ok = SweepSpec(config, overrides=(
            {"topology": {"kind": "torus", "dims": [4, 4]}},), seeds=[0])
        assert ok.expand()[0].topology == TopologySpec("torus", (4, 4))

    def test_unknown_field_rejected(self, config):
        spec = SweepSpec(config, overrides=({"warp": 1},), seeds=[0])
        with pytest.raises(ConfigurationError, match="warp"):
            spec.expand()

    def test_empty_seeds_rejected(self, config):
        with pytest.raises(ConfigurationError):
            SweepSpec(config, seeds=())

    def test_base_must_be_config(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(base="nope")

    def test_default_is_base_only(self, config):
        spec = SweepSpec(config, seeds=[3])
        assert spec.expand() == [config.with_seed(3)]

    def test_report_by_groups(self, config):
        spec = SweepSpec.grid(config, {"marking": ["ddpm", "dpm"]}, seeds=[1, 2])
        report = ParallelRunner().run_sweep(spec)
        groups = report.by("marking")
        assert set(groups) == {("ddpm",), ("dpm",)}
        assert all(len(g) == 2 for g in groups.values())
        assert report.records()[0]["marking"] == "ddpm"
