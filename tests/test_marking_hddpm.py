"""Unit and integration tests for hierarchical DDPM on hybrid topologies."""

import numpy as np
import pytest

from repro.errors import IdentificationError, MarkingError
from repro.marking import HierarchicalDdpmScheme
from repro.network import Fabric
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import TableRouter, walk_route
from repro.routing.selection import RandomPolicy
from repro.topology import ClusterMesh, Mesh


@pytest.fixture
def cm():
    return ClusterMesh((3, 3), hosts_per_switch=4)


@pytest.fixture
def scheme(cm):
    s = HierarchicalDdpmScheme()
    s.attach(cm)
    return s


def mark_along(scheme, topology, path):
    packet = Packet(IPHeader(1, 2), path[0], path[-1])
    scheme.on_inject(packet, path[0])
    for u, v in zip(path[:-1], path[1:]):
        scheme.on_hop(packet, u, v)
    return packet


class TestLayout:
    def test_port_plus_vector_fits(self, scheme):
        # 4 hosts -> 2 port bits; 3x3 backbone -> 3+3 signed bits.
        assert scheme.port_bits == 2
        assert scheme.layout.used_bits == 2 + 3 + 3

    def test_requires_cluster_mesh(self):
        scheme = HierarchicalDdpmScheme()
        with pytest.raises(MarkingError):
            scheme.attach(Mesh((4, 4)))

    def test_capacity_example(self):
        # 32x32 torus backbone (6+6 bits) + 16 hosts (4 bits) = 16 bits:
        # 16384 addressable hosts.
        cm = ClusterMesh((32, 32), hosts_per_switch=16, wraparound=True)
        scheme = HierarchicalDdpmScheme()
        scheme.attach(cm)
        assert scheme.layout.used_bits == 16
        assert cm.num_hosts == 16384

    def test_oversized_rejected(self):
        from repro.errors import FieldLayoutError

        cm = ClusterMesh((64, 64), hosts_per_switch=16)
        scheme = HierarchicalDdpmScheme()
        with pytest.raises(FieldLayoutError):
            scheme.attach(cm)


class TestIdentification:
    def test_all_host_pairs_exact(self, cm, scheme, rng):
        router = TableRouter(cm)
        select = RandomPolicy(rng).binder()
        for src in cm.hosts():
            for dst in (0, 17, 35):
                if src == dst:
                    continue
                path = walk_route(cm, router, src, dst, select)
                packet = mark_along(scheme, cm, path)
                assert scheme.identify(packet, dst) == src

    def test_same_switch_pair(self, cm, scheme, rng):
        # Hosts 0 and 1 share a switch: vector stays zero, port decides.
        router = TableRouter(cm)
        path = walk_route(cm, router, 1, 0, RandomPolicy(rng).binder())
        packet = mark_along(scheme, cm, path)
        assert scheme.identify(packet, 0) == 1

    def test_attacker_preload_overwritten(self, cm, scheme, rng):
        router = TableRouter(cm)
        path = walk_route(cm, router, 7, 30, RandomPolicy(rng).binder())
        packet = Packet(IPHeader(1, 2), 7, 30)
        packet.header.identification = 0xFFFF
        scheme.on_inject(packet, 7)
        for u, v in zip(path[:-1], path[1:]):
            scheme.on_hop(packet, u, v)
        assert scheme.identify(packet, 30) == 7

    def test_victim_must_be_host(self, cm, scheme):
        packet = Packet(IPHeader(1, 2), 0, cm.num_hosts)
        scheme.on_inject(packet, 0)
        with pytest.raises(IdentificationError):
            scheme.identify(packet, cm.num_hosts)

    def test_injection_from_switch_rejected(self, cm, scheme):
        packet = Packet(IPHeader(1, 2), cm.num_hosts, 0)
        with pytest.raises(MarkingError):
            scheme.on_inject(packet, cm.num_hosts)


class TestFabricIntegration:
    def test_spoofed_flood_identified(self, cm):
        scheme = HierarchicalDdpmScheme()
        fab = Fabric(cm, TableRouter(cm), marking=scheme,
                     selection=RandomPolicy(np.random.default_rng(0)))
        victim = 35
        analysis = scheme.new_victim_analysis(victim)
        fab.add_delivery_handler(victim, lambda ev: analysis.observe(ev.packet))
        attackers = [2, 13, 22]
        for i, a in enumerate(attackers * 10):
            fab.inject(fab.make_packet(a, victim, spoofed_src_ip=0x01020304),
                       delay=i * 0.05)
        fab.run()
        assert analysis.suspects() == frozenset(attackers)

    def test_torus_backbone_wraparound(self):
        cm = ClusterMesh((4, 4), hosts_per_switch=2, wraparound=True)
        scheme = HierarchicalDdpmScheme()
        fab = Fabric(cm, TableRouter(cm), marking=scheme,
                     selection=RandomPolicy(np.random.default_rng(1)))
        victim = 0
        analysis = scheme.new_victim_analysis(victim)
        fab.add_delivery_handler(victim, lambda ev: analysis.observe(ev.packet))
        attacker = 31  # opposite corner host: wrap links in play
        for i in range(10):
            fab.inject(fab.make_packet(attacker, victim), delay=i * 0.1)
        fab.run()
        assert analysis.suspects() == frozenset({attacker})
