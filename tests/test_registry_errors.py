"""Structured UnknownNameError from registries and registry-backed specs."""

import pytest

from repro import registry
from repro.core.config import MarkingSpec, RoutingSpec
from repro.errors import ConfigurationError, UnknownNameError


class TestRegistryLookups:
    def test_create_unknown_name_raises_structured_error(self):
        with pytest.raises(UnknownNameError) as excinfo:
            registry.ROUTING.create("warp-speed", None)
        err = excinfo.value
        assert err.kind == "routing"
        assert err.name == "warp-speed"
        assert err.choices == registry.ROUTING.names()
        assert "xy" in str(err)

    def test_unregister_unknown_name_raises_structured_error(self):
        with pytest.raises(UnknownNameError) as excinfo:
            registry.MARKING.unregister("warp-speed")
        assert excinfo.value.choices == registry.MARKING.names()

    def test_subclasses_configuration_error(self):
        # Existing except ConfigurationError handlers keep working.
        with pytest.raises(ConfigurationError):
            registry.TOPOLOGY.create("klein-bottle", (4, 4))

    def test_not_a_bare_keyerror(self):
        try:
            registry.FAULTS.create("meteor", {})
        except KeyError:  # pragma: no cover - would mark regression
            pytest.fail("registry lookup leaked a bare KeyError")
        except UnknownNameError:
            pass


class TestSpecValidation:
    def test_routing_spec_unknown_name(self):
        with pytest.raises(UnknownNameError) as excinfo:
            RoutingSpec.from_dict({"name": "warp-speed"})
        assert excinfo.value.kind == "routing"
        assert "dor" in excinfo.value.choices

    def test_marking_spec_unknown_name_lists_choices(self):
        with pytest.raises(UnknownNameError) as excinfo:
            MarkingSpec.from_dict({"name": "invisible-ink"})
        assert "hddpm" in excinfo.value.choices

    def test_empty_choices_message(self):
        err = UnknownNameError("gizmo", "x")
        assert err.choices == ()
        assert "none registered" in str(err)


class TestHddpmRegistration:
    def test_hddpm_is_listed(self):
        assert "hddpm" in registry.MARKING.names()

    def test_hddpm_factory_builds_scheme(self):
        import numpy as np

        from repro.marking.hddpm import HierarchicalDdpmScheme

        scheme = registry.MARKING.create(
            "hddpm", np.random.default_rng(0), None, 0.05)
        assert isinstance(scheme, HierarchicalDdpmScheme)
