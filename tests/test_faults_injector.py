"""FaultInjector against live fabrics: the ISSUE acceptance scenario,
credit conservation across mid-transmission link loss, NIC stalls,
switch crashes, packet-level faults, and overlap safety."""

import pytest

from repro.core.config import (
    ExperimentConfig,
    MarkingSpec,
    RoutingSpec,
    SelectionSpec,
    TopologySpec,
)
from repro.core.experiment import run_identification_experiment
from repro.engine import Simulator
from repro.errors import FaultError
from repro.faults import (
    FaultCampaign,
    FaultInjector,
    LinkFlapSpec,
    NicStallSpec,
    PacketFaultSpec,
    RandomLinkFlapSpec,
    SwitchCrashSpec,
)
from repro.network import Fabric, FabricConfig
from repro.routing import DimensionOrderRouter, FullyAdaptiveRouter
from repro.topology import Mesh, Torus


def build(topology=None, router=None, **cfg):
    topology = topology if topology is not None else Mesh((4, 4))
    router = router if router is not None else DimensionOrderRouter()
    return Fabric(topology, router, config=FabricConfig(**cfg))


def arm(fab, *specs, horizon=10.0):
    injector = FaultInjector(FaultCampaign(tuple(specs)), fab, horizon=horizon)
    injector.arm()
    return injector


def conservation_ok(fab):
    counters = fab.counters.as_dict()
    dropped = sum(v for k, v in counters.items() if k.startswith("dropped_"))
    return counters.get("injected", 0) == counters.get("delivered", 0) + dropped


class TestAcceptanceScenario:
    def test_link_failures_mid_run_on_adaptive_torus(self):
        # The ISSUE's acceptance criterion: a campaign that fails at least
        # one link mid-run on an 8x8 adaptive torus completes without
        # raising, reroutes in-flight packets, and reports identification
        # accuracy plus per-fault counters.
        config = ExperimentConfig(
            topology=TopologySpec("torus", (8, 8)),
            routing=RoutingSpec("fully-adaptive"),
            marking=MarkingSpec("ddpm"),
            selection=SelectionSpec("random"),
            seed=0,
            num_attackers=3,
            attack_rate_per_node=40.0,
            background_rate=2.0,
            duration=2.0,
            faults=FaultCampaign((
                RandomLinkFlapSpec(probability=0.1, mean_downtime=1.0),
            )),
        )
        result = run_identification_experiment(config)
        fault_info = result.extra["faults"]
        assert fault_info["links_failed"] >= 1
        assert fault_info["rerouted"] > 0
        assert 0.0 <= result.score.precision <= 1.0
        assert 0.0 <= result.score.recall <= 1.0
        # every per-fault counter is surfaced for the result record
        for key in ("links_restored", "packet_drops", "packet_bitflips",
                    "nic_stall_drops"):
            assert key in fault_info

    def test_same_campaign_same_seed_is_deterministic(self):
        config = ExperimentConfig(
            topology=TopologySpec("torus", (6, 6)),
            routing=RoutingSpec("fully-adaptive"),
            marking=MarkingSpec("ddpm"),
            selection=SelectionSpec("random"),
            seed=7,
            duration=1.0,
            faults=FaultCampaign((
                RandomLinkFlapSpec(probability=0.2, mean_downtime=0.5),
            )),
        )
        first = run_identification_experiment(config)
        second = run_identification_experiment(config)
        assert first.extra["faults"] == second.extra["faults"]
        assert first.suspects == second.suspects


class TestCreditConservation:
    def _run_until_on_wire(self, fab, chan):
        t = 0.0
        while not (chan.credits < chan.buffer_capacity and not chan.queue):
            t += 0.005
            fab.sim.run_until(t)
            assert t < 2.0, "packet never reached the wire"

    def test_mid_transmission_failure_returns_credit(self):
        # Satellite regression: pulling the cable while a flit is crossing
        # must not strand the receiver-buffer credit it reserved.
        fab = build()
        chan = fab.switches[0].outputs[1]
        fab.inject(fab.make_packet(0, 1))
        self._run_until_on_wire(fab, chan)
        fab.fail_link(0, 1)
        fab.run()
        assert fab.counters["dropped_link_failed"] == 1
        assert chan.credits == chan.buffer_capacity

    def test_full_capacity_after_fail_restore_cycle(self):
        fab = build(buffer_capacity=2)
        chan = fab.switches[0].outputs[1]
        delivered = []
        fab.add_delivery_handler(1, lambda ev: delivered.append(ev))
        fab.inject(fab.make_packet(0, 1))
        self._run_until_on_wire(fab, chan)
        fab.fail_link(0, 1)
        fab.run()
        fab.restore_link(0, 1)
        assert chan.credits == chan.buffer_capacity
        # A restored link must sustain a burst deeper than the credit pool:
        # any stranded credit would wedge the tail of the burst forever.
        for _ in range(chan.buffer_capacity + 3):
            fab.inject(fab.make_packet(0, 1))
        fab.run()
        assert len(delivered) == chan.buffer_capacity + 3
        assert chan.credits == chan.buffer_capacity
        assert conservation_ok(fab)

    def test_flap_spec_drives_the_same_cycle(self):
        fab = build(topology=Torus((4, 4)), router=FullyAdaptiveRouter())
        injector = arm(fab, LinkFlapSpec(u=0, v=1, fail_at=0.02,
                                         restore_at=0.5))
        for i in range(30):
            fab.inject(fab.make_packet(0, 1), delay=0.001 * i)
        fab.run()
        assert injector.counters.links_failed == 1
        assert injector.counters.links_restored == 1
        chan = fab.switches[0].outputs[1]
        assert chan.credits == chan.buffer_capacity
        assert conservation_ok(fab)


class TestNicStall:
    def test_stall_window_swallows_injections(self):
        fab = build()
        injector = arm(fab, NicStallSpec(node=3, start_at=0.1, end_at=0.2))
        for i in range(10):
            fab.inject(fab.make_packet(3, 12), delay=0.02 * i)
        fab.inject(fab.make_packet(5, 12), delay=0.15)  # other NICs unaffected
        fab.run()
        assert injector.counters.nic_stall_drops == 5  # t=0.10..0.18
        assert fab.counters["dropped_nic_stalled"] == 5
        assert fab.counters["delivered"] == 6
        assert conservation_ok(fab)


class TestSwitchCrash:
    def test_crash_severs_and_restart_restores(self):
        fab = build(topology=Mesh((4, 4)), router=FullyAdaptiveRouter())
        injector = arm(fab, SwitchCrashSpec(node=5, crash_at=0.1,
                                            restart_at=0.5))
        delivered = []
        fab.add_delivery_handler(10, lambda ev: delivered.append(ev))
        fab.inject(fab.make_packet(0, 10), delay=0.8)  # after restart
        fab.run()
        # node 5 is interior: four links severed, all restored
        assert injector.counters.switch_crashes == 1
        assert injector.counters.switch_restarts == 1
        assert injector.counters.links_failed == 4
        assert injector.counters.links_restored == 4
        assert all(fab.topology.links.is_up(5, n)
                   for n in fab.topology.neighbors(5))
        assert len(delivered) == 1

    def test_crash_with_no_restart_leaves_node_cut_off(self):
        fab = build(topology=Mesh((4, 4)), router=FullyAdaptiveRouter())
        arm(fab, SwitchCrashSpec(node=5, crash_at=0.05))
        fab.inject(fab.make_packet(5, 10), delay=0.5)
        fab.run()
        assert fab.counters["delivered"] == 0
        assert conservation_ok(fab)


class TestPacketFaults:
    def test_drop_mode_counts_and_conserves(self):
        fab = build()
        injector = arm(fab, PacketFaultSpec(mode="drop", probability=1.0))
        for i in range(5):
            fab.inject(fab.make_packet(0, 15), delay=0.01 * i)
        fab.run()
        assert injector.counters.packet_drops == 5
        assert fab.counters["dropped_fault_injected"] == 5
        assert fab.counters["delivered"] == 0
        assert conservation_ok(fab)

    def test_duplicate_mode_delivers_extras(self):
        fab = build()
        injector = arm(fab, PacketFaultSpec(mode="duplicate", probability=1.0,
                                            node=0))
        delivered = []
        fab.add_delivery_handler(1, lambda ev: delivered.append(ev))
        fab.inject(fab.make_packet(0, 1))
        fab.run()
        assert injector.counters.packet_duplicates == 1
        assert len(delivered) == 2

    def test_bitflip_corrupts_marking_field(self):
        fab = build()
        injector = arm(fab, PacketFaultSpec(mode="bitflip", probability=1.0))
        packet = fab.make_packet(0, 1)
        packet.header.identification = 0
        fab.inject(packet)
        fab.run()
        assert injector.counters.packet_bitflips == 1
        assert packet.header.identification != 0
        assert fab.counters["delivered"] == 1

    def test_bitflip_on_mesh_does_not_kill_identification(self):
        # On a mesh (no wraparound) a flipped MF bit can decode to a
        # coordinate outside the grid; the victim analysis must discard
        # the packet as corrupted, not die on IdentificationError.
        config = ExperimentConfig(
            topology=TopologySpec("mesh", (4, 4)),
            routing=RoutingSpec("fully-adaptive"),
            marking=MarkingSpec("ddpm"),
            seed=3,
            duration=1.0,
            attack_rate_per_node=40.0,
            faults=FaultCampaign((
                PacketFaultSpec(mode="bitflip", probability=0.3),
            )),
        )
        result = run_identification_experiment(config)
        assert result.extra["faults"]["packet_bitflips"] > 0
        assert 0.0 <= result.score.precision <= 1.0

    def test_window_and_node_filters(self):
        fab = build()
        injector = arm(fab, PacketFaultSpec(mode="drop", probability=1.0,
                                            start_at=1.0, end_at=2.0, node=7))
        fab.inject(fab.make_packet(0, 15), delay=0.01)   # before window
        fab.inject(fab.make_packet(1, 2), delay=1.5)     # window, wrong node
        fab.run()
        assert injector.counters.packet_drops == 0
        assert fab.counters["delivered"] == 2


class TestDegradedRouting:
    def test_dor_drops_queued_packets_without_raising(self):
        # DOR has a single legal output per hop: when that link dies, every
        # packet reaching the broken hop must become a counted drop
        # ("unroutable" when the router offers nothing, "link_failed" when
        # the switch catches the dead channel), never an exception.
        fab = build(buffer_capacity=1, link_bandwidth=10.0)
        for i in range(8):
            fab.inject(fab.make_packet(0, 3), delay=0.001 * i)
        arm(fab, LinkFlapSpec(u=1, v=2, fail_at=0.5))
        fab.run()
        counters = fab.counters
        dead_end = counters["dropped_unroutable"] + counters["dropped_link_failed"]
        assert dead_end >= 1
        assert conservation_ok(fab)

    def test_adaptive_reroutes_stranded_packets(self):
        # Congest one output (FirstCandidatePolicy funnels all 0->5 traffic
        # onto it), then cut it: the stranded queue must detour over the
        # live alternative instead of dying.
        fab = build(topology=Mesh((4, 4)), router=FullyAdaptiveRouter(),
                    buffer_capacity=1, link_bandwidth=10.0)
        for i in range(12):
            fab.inject(fab.make_packet(0, 5), delay=0.001 * i)
        arm(fab, LinkFlapSpec(u=0, v=4, fail_at=15.0))
        fab.run()
        assert fab.n_rerouted > 0
        # only the single packet on the wire at fail time may be lost
        assert fab.counters["delivered"] >= 10
        assert conservation_ok(fab)


class TestOverlapSafety:
    def test_double_arm_raises(self):
        fab = build()
        injector = FaultInjector(
            FaultCampaign((LinkFlapSpec(u=0, v=1, fail_at=1.0),)), fab)
        injector.arm()
        with pytest.raises(FaultError):
            injector.arm()

    def test_crash_overlapping_flap_is_safe(self):
        # The flap owns link (5, 6) when the crash hits; the crash must
        # skip it, and each restore only touches links its spec failed.
        fab = build(topology=Mesh((4, 4)), router=FullyAdaptiveRouter())
        injector = arm(
            fab,
            LinkFlapSpec(u=5, v=6, fail_at=0.1, restore_at=2.0),
            SwitchCrashSpec(node=5, crash_at=0.5, restart_at=1.0),
        )
        fab.inject(fab.make_packet(0, 15), delay=2.5)
        fab.run()  # no FaultError from restoring an already-up link
        assert injector.counters.links_failed == 4  # flap + 3 crash-severed
        assert injector.counters.links_restored == 4
        assert all(fab.topology.links.is_up(5, n)
                   for n in fab.topology.neighbors(5))

    def test_arm_validates_against_topology(self):
        fab = build()
        with pytest.raises(FaultError):
            arm(fab, LinkFlapSpec(u=0, v=99, fail_at=1.0))
        with pytest.raises(FaultError):
            arm(fab, LinkFlapSpec(u=0, v=5, fail_at=1.0))  # not adjacent
        with pytest.raises(FaultError):
            arm(fab, SwitchCrashSpec(node=400, crash_at=1.0))

    def test_arm_after_time_passed_raises(self):
        fab = build()
        fab.sim.run_until(2.0)
        with pytest.raises(FaultError):
            arm(fab, LinkFlapSpec(u=0, v=1, fail_at=1.0))
