"""Tests pinning Tables 1-3 of the paper."""

import pytest

from repro.analysis.scalability import (
    bitdiff_ppm_required_bits_hypercube,
    bitdiff_ppm_required_bits_mesh,
    ddpm_required_bits_hypercube,
    ddpm_required_bits_mesh,
    max_hypercube_dim,
    max_mesh_side,
    render_table,
    simple_ppm_required_bits_hypercube,
    simple_ppm_required_bits_mesh,
    table1,
    table2,
    table3,
)
from repro.errors import ConfigurationError
from repro.marking.ppm_encoding import BitDifferenceEncoder, FullIndexEncoder
from repro.topology import Mesh


class TestTable1:
    """Paper Table 1: simple PPM maxes at 8x8 mesh and 2^6 hypercube."""

    def test_mesh_max_is_8(self):
        assert max_mesh_side(simple_ppm_required_bits_mesh) == 8

    def test_mesh_8_uses_exactly_16_bits(self):
        assert simple_ppm_required_bits_mesh(8) == 16
        assert simple_ppm_required_bits_mesh(9) > 16

    def test_hypercube_max_is_6(self):
        assert max_hypercube_dim(simple_ppm_required_bits_hypercube) == 6

    def test_paper_4x4_example_is_11_bits(self):
        # §4.2: "Total number of bits is 11, which is smaller than 16-bit MF."
        assert simple_ppm_required_bits_mesh(4) == 11

    def test_rows(self):
        rows = table1()
        mesh_row = rows[0]
        cube_row = rows[1]
        assert mesh_row["max_nodes"] == 64
        assert cube_row["max_nodes"] == 64

    def test_formula_matches_encoder_reality(self):
        # The analytic bit count equals what the real encoder allocates.
        for n in (4, 8):
            enc = FullIndexEncoder()
            enc.attach(Mesh((n, n)))
            assert enc.layout.used_bits == simple_ppm_required_bits_mesh(n)


class TestTable2:
    """Paper Table 2 (bit-difference): 2^8 hypercube; mesh cell computed."""

    def test_hypercube_max_is_8(self):
        assert max_hypercube_dim(bitdiff_ppm_required_bits_hypercube) == 8

    def test_mesh_max_is_16(self):
        # Unreadable in our source text; 16x16 is the value consistent with
        # the formula and the hypercube row (see EXPERIMENTS.md).
        assert max_mesh_side(bitdiff_ppm_required_bits_mesh) == 16

    def test_formula_matches_encoder_reality(self):
        for n in (4, 8, 16):
            enc = BitDifferenceEncoder()
            enc.attach(Mesh((n, n)))
            assert enc.layout.used_bits == bitdiff_ppm_required_bits_mesh(n)

    def test_rows(self):
        rows = table2()
        assert rows[0]["max_nodes"] == 256
        assert rows[1]["max_nodes"] == 256


class TestTable3:
    """Paper Table 3: DDPM supports 128x128, 16x16x32, and 2^16."""

    def test_mesh_max_is_128(self):
        assert max_mesh_side(ddpm_required_bits_mesh, ceiling=1 << 14) == 128

    def test_hypercube_max_is_16(self):
        assert max_hypercube_dim(ddpm_required_bits_hypercube) == 16

    def test_rows_match_paper(self):
        rows = table3()
        assert rows[0]["max_nodes"] == 16384   # 128 x 128
        assert rows[1]["max_nodes"] == 8192    # 16 x 16 x 32
        assert rows[1]["max_dims"] == "16x16x32"
        assert rows[2]["max_nodes"] == 65536   # 2^16

    def test_ddpm_dominates_baselines(self):
        t1 = table1()[0]["max_nodes"]
        t2 = table2()[0]["max_nodes"]
        t3 = table3()[0]["max_nodes"]
        assert t3 > t2 > t1  # the paper's scalability ordering


class TestHelpers:
    def test_render_table_contains_values(self):
        text = render_table(table3(), "Table 3")
        assert "16384" in text and "65536" in text and "Table 3" in text

    def test_max_search_raises_when_nothing_fits(self):
        with pytest.raises(ConfigurationError):
            max_mesh_side(simple_ppm_required_bits_mesh, mf_bits=2)

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            simple_ppm_required_bits_mesh(1)
        with pytest.raises(ConfigurationError):
            simple_ppm_required_bits_hypercube(0)
