"""Unit and integration tests for DPM (TTL-position one-bit marking)."""

import numpy as np
import pytest

from repro.analysis.dpm_model import neighbor_bit_collision_rate, signature_table_ambiguity
from repro.marking.dpm import DpmScheme, build_signature_table, path_signature
from repro.network import Fabric, FabricConfig
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import (
    DimensionOrderRouter,
    MinimalAdaptiveRouter,
    RandomPolicy,
    walk_route,
)
from repro.topology import Mesh, Torus


def attached(topology):
    scheme = DpmScheme()
    scheme.attach(topology)
    return scheme


class TestSwitchSide:
    def test_writes_one_bit_at_ttl_position(self, mesh44):
        scheme = attached(mesh44)
        packet = Packet(IPHeader(1, 2, ttl=37), 0, 15)
        scheme.on_inject(packet, 0)
        scheme.on_hop(packet, 5, 6)
        position = 37 % 16
        expected = scheme.node_bit(5) << position
        assert packet.header.identification == expected

    def test_consecutive_hops_hit_consecutive_positions(self, mesh44):
        scheme = attached(mesh44)
        packet = Packet(IPHeader(1, 2, ttl=32), 0, 15)
        scheme.on_inject(packet, 0)
        # Mirror the fabric: decrement TTL, then mark.
        for node in (0, 1, 2):
            packet.header.decrement_ttl()
            scheme.on_hop(packet, node, node + 1)
        word = packet.header.identification
        for i, node in enumerate((0, 1, 2)):
            position = (31 - i) % 16
            assert (word >> position) & 1 == scheme.node_bit(node)

    def test_marks_overwritten_past_16_hops(self):
        """Paper §4.3: paths longer than 16 hops lose early information."""
        scheme = DpmScheme()
        long_mesh = Mesh((1, 40))
        scheme.attach(long_mesh)
        path = tuple(range(40))  # 39 forwarding hops > 16
        sig_full = path_signature(scheme, path, initial_ttl=64)
        # The last 16 forwarding switches fully determine the signature:
        # everything the farther switches wrote was overwritten.
        sig_late = path_signature(scheme, path[-17:], initial_ttl=64 - (len(path) - 17))
        assert sig_full == sig_late

    def test_on_inject_zeroes(self, mesh44):
        scheme = attached(mesh44)
        packet = Packet(IPHeader(1, 2), 0, 15)
        packet.header.identification = 0xFFFF
        scheme.on_inject(packet, 0)
        assert packet.header.identification == 0


class TestSignatureTable:
    def test_stable_routes_signature_consistency(self, mesh44):
        scheme = attached(mesh44)
        router = DimensionOrderRouter()
        table = build_signature_table(scheme, mesh44, router, 15, 64)
        # Walk source 0's path through the fabric formula and check the
        # table contains it.
        path = tuple(walk_route(mesh44, router, 0, 15, lambda c, cur: c[0]))
        sig = path_signature(scheme, path, 64)
        assert 0 in table[sig]

    def test_table_covers_all_sources(self, mesh44):
        scheme = attached(mesh44)
        table = build_signature_table(scheme, mesh44, DimensionOrderRouter(), 15, 64)
        covered = set()
        for sources in table.values():
            covered |= sources
        assert covered == set(range(15))

    def test_collisions_exist(self, mesh44):
        """Paper §4.3: distinct sources share signatures (half of neighbors
        share a hash bit)."""
        scheme = attached(mesh44)
        table = build_signature_table(scheme, mesh44, DimensionOrderRouter(), 15, 64)
        stats = signature_table_ambiguity(table)
        assert stats["ambiguous_source_fraction"] > 0.0

    def test_neighbor_bit_collision_near_half(self):
        # Larger mesh for statistical stability.
        mesh = Mesh((16, 16))
        scheme = attached(mesh)
        rate = neighbor_bit_collision_rate(mesh, scheme)
        assert 0.35 < rate < 0.65


class TestVictimAnalysis:
    def test_signature_counting(self, mesh44):
        scheme = attached(mesh44)
        analysis = scheme.new_victim_analysis(15)
        packet = Packet(IPHeader(1, 2), 0, 15)
        packet.header.identification = 0x1234
        analysis.observe(packet)
        analysis.observe(packet)
        assert analysis.observed_signatures() == frozenset({0x1234})
        assert analysis.signature_counts[0x1234] == 2

    def test_without_table_no_suspects_but_signatures(self, mesh44):
        scheme = attached(mesh44)
        analysis = scheme.new_victim_analysis(15)
        packet = Packet(IPHeader(1, 2), 0, 15)
        packet.header.identification = 0x4321
        analysis.observe(packet)
        assert analysis.suspects() == frozenset()
        assert analysis.observed_signatures()

    def test_suspects_via_table(self, mesh44):
        scheme = attached(mesh44)
        router = DimensionOrderRouter()
        table = build_signature_table(scheme, mesh44, router, 15, 64)
        fab = Fabric(mesh44, router, marking=scheme)
        analysis = scheme.new_victim_analysis(15, table)
        fab.add_delivery_handler(15, lambda ev: analysis.observe(ev.packet))
        for i in range(10):
            fab.inject(fab.make_packet(0, 15), delay=i * 0.01)
        fab.run()
        assert 0 in analysis.suspects()


class TestAdaptiveInstability:
    def test_one_source_many_signatures_under_adaptive_routing(self):
        """Paper §4.3: 'one attack may have different MF values'."""
        topology = Mesh((5, 5))
        scheme = DpmScheme()
        fab = Fabric(topology, MinimalAdaptiveRouter(), marking=scheme,
                     selection=RandomPolicy(np.random.default_rng(0)))
        analysis = scheme.new_victim_analysis(24)
        fab.add_delivery_handler(24, lambda ev: analysis.observe(ev.packet))
        for i in range(80):
            fab.inject(fab.make_packet(0, 24), delay=i * 0.05)
        fab.run()
        assert len(analysis.observed_signatures()) > 3

    def test_deterministic_single_signature(self):
        topology = Mesh((5, 5))
        scheme = DpmScheme()
        fab = Fabric(topology, DimensionOrderRouter(), marking=scheme)
        analysis = scheme.new_victim_analysis(24)
        fab.add_delivery_handler(24, lambda ev: analysis.observe(ev.packet))
        for i in range(40):
            fab.inject(fab.make_packet(0, 24), delay=i * 0.05)
        fab.run()
        assert len(analysis.observed_signatures()) == 1
