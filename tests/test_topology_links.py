"""Unit tests for link failure bookkeeping."""

import pytest

from repro.errors import TopologyError
from repro.topology import Mesh
from repro.topology.links import LinkSet, canonical_link


class TestCanonical:
    def test_orders_pair(self):
        assert canonical_link(5, 2) == (2, 5)
        assert canonical_link(2, 5) == (2, 5)

    def test_self_link_rejected(self):
        with pytest.raises(TopologyError):
            canonical_link(3, 3)


class TestLinkSet:
    def test_duplicates_collapse(self):
        links = LinkSet([(0, 1), (1, 0), (1, 2)])
        assert len(links) == 2

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            LinkSet([])

    def test_fail_and_restore(self):
        links = LinkSet([(0, 1), (1, 2)])
        assert links.is_up(0, 1)
        links.fail(1, 0)  # either order
        assert not links.is_up(0, 1)
        assert links.exists(0, 1)
        assert links.failed_links == frozenset({(0, 1)})
        links.restore(0, 1)
        assert links.is_up(0, 1)

    def test_fail_nonexistent_rejected(self):
        links = LinkSet([(0, 1)])
        with pytest.raises(TopologyError):
            links.fail(0, 2)

    def test_restore_unfailed_rejected(self):
        links = LinkSet([(0, 1)])
        with pytest.raises(TopologyError):
            links.restore(0, 1)

    def test_live_links(self):
        links = LinkSet([(0, 1), (1, 2), (2, 3)])
        links.fail(1, 2)
        assert links.live_links() == frozenset({(0, 1), (2, 3)})

    def test_restore_all(self):
        links = LinkSet([(0, 1), (1, 2)])
        links.fail(0, 1)
        links.fail(1, 2)
        links.restore_all()
        assert links.failed_links == frozenset()


class TestTopologyIntegration:
    def test_failed_link_hides_neighbor(self):
        mesh = Mesh((4, 4))
        a, b = mesh.index((0, 0)), mesh.index((0, 1))
        mesh.fail_link(a, b)
        assert b not in mesh.neighbors(a)
        assert b in mesh.neighbors(a, include_failed=True)
        mesh.restore_link(a, b)
        assert b in mesh.neighbors(a)

    def test_edge_list_excludes_failed_by_default(self):
        mesh = Mesh((3, 3))
        total = len(mesh.to_edge_list())
        mesh.fail_link(0, 1)
        assert len(mesh.to_edge_list()) == total - 1
        assert len(mesh.to_edge_list(include_failed=True)) == total
