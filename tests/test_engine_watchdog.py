"""Watchdog detectors: deadlock, livelock, and wall-clock stall each fire."""

import pytest

from repro.engine import Simulator, Watchdog, WatchdogReport
from repro.errors import ConfigurationError, WatchdogTimeout
from repro.network.fabric import Fabric
from repro.routing.adaptive import FullyAdaptiveRouter
from repro.routing.dor import DimensionOrderRouter
from repro.topology import Mesh


def _noop():
    """Inert event callback (module-level: schedule_call takes no closures)."""


class _Spinner:
    """Self-rescheduling event: simulated progress forever, no termination."""

    def __init__(self, sim):
        self.sim = sim

    def __call__(self):
        self.sim.schedule_call(0.001, self)


class TestValidation:
    def test_bad_wall_clock_limit(self):
        with pytest.raises(ConfigurationError):
            Watchdog(wall_clock_limit=0)
        with pytest.raises(ConfigurationError):
            Watchdog(wall_clock_limit=-1.0)

    def test_bad_check_interval(self):
        with pytest.raises(ConfigurationError):
            Watchdog(check_interval=0)

    def test_bad_hop_ceiling(self):
        with pytest.raises(ConfigurationError):
            Watchdog(hop_ceiling=0)

    def test_bad_tolerance(self):
        with pytest.raises(ConfigurationError):
            Watchdog(livelock_tolerance=-1)


class TestStall:
    def test_stall_fires_on_busy_loop(self):
        # An event loop that reschedules itself forever makes simulated
        # progress but would burn wall clock until max_events; the stall
        # detector must end it far earlier.
        watchdog = Watchdog(wall_clock_limit=0.05, check_interval=64)
        sim = Simulator(seed=0, watchdog=watchdog)

        sim.schedule_call(0.0, _Spinner(sim))
        with pytest.raises(WatchdogTimeout) as excinfo:
            sim.run_until(1e12)
        report = excinfo.value.report
        assert report.kind == "stall"
        assert report.wall_elapsed >= 0.05
        assert report.events_executed > 0
        assert watchdog.report is report

    def test_no_fire_within_limit(self):
        watchdog = Watchdog(wall_clock_limit=60.0)
        sim = Simulator(seed=0, watchdog=watchdog)
        for _ in range(10):
            sim.schedule_call(0.1, _noop)
        sim.run()
        assert watchdog.report is None


class TestDeadlock:
    def test_probe_positive_after_drain_fires(self):
        watchdog = Watchdog()
        watchdog.attach_deadlock_probe(lambda: 3)
        sim = Simulator(seed=0, watchdog=watchdog)
        sim.schedule_call(1.0, _noop)
        with pytest.raises(WatchdogTimeout) as excinfo:
            sim.run()
        report = excinfo.value.report
        assert report.kind == "deadlock"
        assert report.pending_work == 3

    def test_probe_zero_is_clean(self):
        watchdog = Watchdog()
        watchdog.attach_deadlock_probe(lambda: 0)
        sim = Simulator(seed=0, watchdog=watchdog)
        sim.schedule_call(1.0, _noop)
        sim.run()
        assert watchdog.report is None

    def test_fabric_registers_probe_and_detects_stuck_packet(self):
        # A packet parked in a channel queue with no event left to move it
        # is the deadlock signature; plant one directly.
        watchdog = Watchdog()
        sim = Simulator(seed=0, watchdog=watchdog)
        fab = Fabric(Mesh((4, 4)), DimensionOrderRouter(), sim=sim)
        assert watchdog.deadlock_probe is not None
        fab.switches[0].outputs[1].queue.append(fab.make_packet(0, 1))
        with pytest.raises(WatchdogTimeout) as excinfo:
            fab.run()
        assert excinfo.value.report.kind == "deadlock"
        assert excinfo.value.report.pending_work == 1

    def test_healthy_fabric_run_is_clean(self):
        watchdog = Watchdog(hop_ceiling=64)
        sim = Simulator(seed=0, watchdog=watchdog)
        fab = Fabric(Mesh((4, 4)), DimensionOrderRouter(), sim=sim)
        for i in range(8):
            fab.inject(fab.make_packet(i, 15), delay=0.01 * i)
        fab.run()
        assert fab.counters["delivered"] == 8
        assert watchdog.report is None


class TestLivelock:
    def test_hop_ceiling_drops_and_fires(self):
        # A ceiling below the (unique) DOR path length guarantees the
        # packet is cut down mid-route.
        watchdog = Watchdog(hop_ceiling=2, livelock_tolerance=0)
        sim = Simulator(seed=0, watchdog=watchdog)
        fab = Fabric(Mesh((4, 4)), FullyAdaptiveRouter(), sim=sim)
        assert fab.hop_ceiling == 2
        fab.inject(fab.make_packet(0, 15))  # 6 minimal hops
        with pytest.raises(WatchdogTimeout) as excinfo:
            fab.run()
        assert excinfo.value.report.kind == "livelock"
        assert fab.counters["dropped_livelock"] == 1
        assert watchdog.livelocked_packets == 1

    def test_tolerance_allows_sacrifices(self):
        watchdog = Watchdog(hop_ceiling=2, livelock_tolerance=10)
        sim = Simulator(seed=0, watchdog=watchdog)
        fab = Fabric(Mesh((4, 4)), FullyAdaptiveRouter(), sim=sim)
        for _ in range(3):
            fab.inject(fab.make_packet(0, 15))
        fab.run()  # 3 sacrifices < tolerance of 10: completes
        assert watchdog.livelocked_packets == 3
        assert fab.counters["dropped_livelock"] == 3
        assert watchdog.report is None


class TestReportShape:
    def test_report_roundtrip_and_str(self):
        report = WatchdogReport(kind="stall", detail="too slow", sim_time=1.5,
                                events_executed=42, wall_elapsed=2.0)
        data = report.to_dict()
        assert data["kind"] == "stall"
        assert data["events_executed"] == 42
        assert "stall" in str(report) and "too slow" in str(report)

    def test_watchdog_timeout_is_picklable(self):
        import pickle

        report = WatchdogReport(kind="deadlock", detail="x", sim_time=0.0,
                                events_executed=0, wall_elapsed=0.0,
                                pending_work=2)
        err = pickle.loads(pickle.dumps(WatchdogTimeout(report)))
        assert err.report.kind == "deadlock"
        assert err.report.pending_work == 2
