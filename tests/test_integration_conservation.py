"""System-level invariants under load: packet conservation, determinism.

Every injected packet must end somewhere: delivered or dropped with a
recorded reason, with nothing stuck in a queue once the event loop drains.
These tests hammer the fabric with mixed adaptive traffic, failures, and
marking enabled to catch bookkeeping leaks that unit tests cannot see.
"""

import numpy as np
import pytest

from repro.attack.traffic import UniformRandomPattern, schedule_background
from repro.marking import DdpmScheme
from repro.network import Fabric, FabricConfig
from repro.routing import (
    DimensionOrderRouter,
    FullyAdaptiveRouter,
    LeastCongestedPolicy,
    MinimalAdaptiveRouter,
    RandomPolicy,
)
from repro.topology import Hypercube, Mesh, Torus


def in_flight(fabric):
    """Packets still sitting in any channel queue or receiver buffer."""
    total = 0
    for channel in fabric.channels.values():
        total += len(channel.queue)
        total += channel.buffer_capacity - channel.credits
    return total


class TestConservation:
    @pytest.mark.parametrize("topo_factory,router_factory", [
        (lambda: Mesh((6, 6)), MinimalAdaptiveRouter),
        (lambda: Torus((6, 6)), FullyAdaptiveRouter),
        (lambda: Hypercube(6), MinimalAdaptiveRouter),
    ])
    def test_injected_equals_delivered_plus_dropped(self, topo_factory,
                                                    router_factory):
        topology = topo_factory()
        scheme = DdpmScheme()
        fabric = Fabric(topology, router_factory(), marking=scheme)
        fabric.selection = LeastCongestedPolicy(fabric.congestion,
                                                np.random.default_rng(0))
        rng = np.random.default_rng(1)
        packets = schedule_background(fabric, UniformRandomPattern(),
                                      rate=20.0, duration=3.0, rng=rng)
        fabric.run()
        injected = fabric.counters["injected"]
        assert injected == len(packets)
        assert injected == fabric.counters["delivered"] + fabric.counters["dropped"]
        assert in_flight(fabric) == 0

    def test_conservation_with_midrun_failures(self):
        topology = Mesh((6, 6))
        fabric = Fabric(topology, FullyAdaptiveRouter(),
                        selection=RandomPolicy(np.random.default_rng(2)))
        rng = np.random.default_rng(3)
        packets = schedule_background(fabric, UniformRandomPattern(),
                                      rate=15.0, duration=4.0, rng=rng)
        fabric.run_until(1.0)
        fabric.fail_link(topology.index((2, 2)), topology.index((2, 3)))
        fabric.run_until(2.0)
        fabric.fail_link(topology.index((3, 2)), topology.index((3, 3)))
        fabric.run()
        total = fabric.counters["delivered"] + fabric.counters["dropped"]
        assert total == len(packets)
        assert in_flight(fabric) == 0
        # Every drop carries a recorded reason.
        reasons = {r for _, _, r in fabric.dropped_packets}
        assert reasons <= {"ttl_expired", "unroutable", "link_failed",
                           "filtered_at_source"}

    def test_deterministic_routing_never_drops_fault_free(self):
        topology = Torus((5, 5))
        fabric = Fabric(topology, DimensionOrderRouter())
        rng = np.random.default_rng(4)
        packets = schedule_background(fabric, UniformRandomPattern(),
                                      rate=30.0, duration=2.0, rng=rng)
        fabric.run()
        assert fabric.counters["delivered"] == len(packets)
        assert fabric.counters["dropped"] == 0

    def test_credits_fully_restored_after_drain(self):
        topology = Mesh((4, 4))
        fabric = Fabric(topology, MinimalAdaptiveRouter(),
                        selection=RandomPolicy(np.random.default_rng(5)))
        for i in range(100):
            fabric.inject(fabric.make_packet(i % 15, 15), delay=i * 0.005)
        fabric.run()
        for channel in fabric.channels.values():
            assert channel.credits == channel.buffer_capacity
            assert not channel.busy


class TestDeterminism:
    def _run_once(self, seed):
        topology = Torus((5, 5))
        scheme = DdpmScheme()
        fabric = Fabric(topology, FullyAdaptiveRouter(), marking=scheme,
                        selection=RandomPolicy(np.random.default_rng(seed)))
        victim = 12
        analysis = scheme.new_victim_analysis(victim)
        fabric.add_delivery_handler(victim, lambda ev: analysis.observe(ev.packet))
        rng = np.random.default_rng(seed + 100)
        schedule_background(fabric, UniformRandomPattern(), rate=10.0,
                            duration=2.0, rng=rng)
        fabric.run()
        return (fabric.counters.as_dict(), dict(analysis.source_counts),
                fabric.sim.now)

    def test_identical_seeds_identical_worlds(self):
        assert self._run_once(7) == self._run_once(7)

    def test_different_seeds_diverge(self):
        assert self._run_once(7) != self._run_once(8)


class TestMarkingUnderLoad:
    def test_ddpm_exact_for_every_delivered_packet_under_congestion(self):
        """Heavy congestion, adaptive paths, TTL pressure: every packet that
        arrives still decodes exactly."""
        topology = Mesh((5, 5))
        scheme = DdpmScheme()
        fabric = Fabric(topology, FullyAdaptiveRouter(), marking=scheme)
        fabric.selection = LeastCongestedPolicy(fabric.congestion,
                                                np.random.default_rng(6))
        mismatches = []

        def check(ev):
            decoded = scheme.identify(ev.packet, ev.node)
            if decoded != ev.packet.true_source:
                mismatches.append(ev.packet)

        for node in topology.nodes():
            fabric.add_delivery_handler(node, check)
        rng = np.random.default_rng(7)
        schedule_background(fabric, UniformRandomPattern(), rate=40.0,
                            duration=2.0, rng=rng)
        fabric.run()
        assert fabric.counters["delivered"] > 500
        assert mismatches == []
