"""Unit tests for coordinate algebra."""

import pytest

from repro.errors import TopologyError
from repro.topology.coords import (
    coord_to_index,
    index_to_coord,
    manhattan,
    minimal_signed_residue,
    torus_distance_vector,
    torus_hop_distance,
    vector_add,
    vector_sub,
)


class TestIndexing:
    def test_roundtrip_3d(self):
        dims = (3, 4, 5)
        for index in range(3 * 4 * 5):
            assert coord_to_index(index_to_coord(index, dims), dims) == index

    def test_lexicographic_last_dim_fastest(self):
        assert coord_to_index((0, 1), (4, 4)) == 1
        assert coord_to_index((1, 0), (4, 4)) == 4
        assert coord_to_index((2, 3), (4, 4)) == 11

    def test_out_of_bounds(self):
        with pytest.raises(TopologyError):
            coord_to_index((4, 0), (4, 4))
        with pytest.raises(TopologyError):
            index_to_coord(16, (4, 4))

    def test_arity_mismatch(self):
        with pytest.raises(TopologyError):
            coord_to_index((1, 1, 1), (4, 4))


class TestVectorOps:
    def test_add_sub_inverse(self):
        a, b = (3, -2, 7), (1, 5, -4)
        assert vector_sub(vector_add(a, b), b) == a

    def test_manhattan(self):
        assert manhattan((0, 0)) == 0
        assert manhattan((-3, 2)) == 5

    def test_arity_checked(self):
        with pytest.raises(TopologyError):
            vector_add((1,), (1, 2))


class TestMinimalResidue:
    def test_within_half(self):
        assert minimal_signed_residue(1, 8) == 1
        assert minimal_signed_residue(-3, 8) == -3

    def test_folds_long_way(self):
        assert minimal_signed_residue(7, 8) == -1
        assert minimal_signed_residue(-7, 8) == 1

    def test_even_tie_positive(self):
        assert minimal_signed_residue(4, 8) == 4
        assert minimal_signed_residue(-4, 8) == 4

    def test_odd_modulus(self):
        assert minimal_signed_residue(3, 5) == -2
        assert minimal_signed_residue(2, 5) == 2

    def test_mod_one(self):
        assert minimal_signed_residue(17, 1) == 0

    def test_preserves_congruence_class(self):
        for k in (3, 4, 5, 8):
            for d in range(-20, 21):
                r = minimal_signed_residue(d, k)
                assert (r - d) % k == 0
                assert abs(r) <= k // 2

    def test_invalid_modulus(self):
        with pytest.raises(TopologyError):
            minimal_signed_residue(1, 0)


class TestTorusHelpers:
    def test_distance_vector_prefers_short_way(self):
        assert torus_distance_vector((0, 0), (3, 3), (4, 4)) == (-1, -1)
        assert torus_distance_vector((0, 0), (1, 1), (4, 4)) == (1, 1)

    def test_hop_distance_wrap(self):
        assert torus_hop_distance(3, 0, 4) == 1   # wrap forward
        assert torus_hop_distance(0, 3, 4) == -1  # wrap backward
        assert torus_hop_distance(1, 2, 4) == 1
        assert torus_hop_distance(2, 1, 4) == -1

    def test_hop_distance_rejects_non_neighbors(self):
        with pytest.raises(TopologyError):
            torus_hop_distance(0, 2, 5)

    def test_hop_distance_rejects_trivial_ring(self):
        with pytest.raises(TopologyError):
            torus_hop_distance(0, 0, 1)
