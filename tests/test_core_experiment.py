"""Integration tests for the experiment runner — the paper's headline matrix."""

import pytest

from repro.core import (
    ExperimentConfig,
    MarkingSpec,
    RoutingSpec,
    SelectionSpec,
    TopologySpec,
    run_identification_experiment,
    sweep,
)


def config(routing, marking, selection="random", **kw):
    defaults = dict(
        topology=TopologySpec("mesh", (6, 6)),
        routing=RoutingSpec(routing),
        marking=MarkingSpec(marking, probability=0.2),
        selection=SelectionSpec(selection),
        seed=42, num_attackers=3, duration=2.0,
    )
    defaults.update(kw)
    return ExperimentConfig(**defaults)


class TestHeadlineMatrix:
    """The paper's central comparison (§4-§5), end to end."""

    def test_ddpm_exact_under_every_routing(self):
        for routing in ("xy", "west-first", "minimal-adaptive", "fully-adaptive"):
            result = run_identification_experiment(config(routing, "ddpm"))
            assert result.score.exact, (routing, result.suspects)

    def test_ppm_exact_under_deterministic_routing(self):
        result = run_identification_experiment(
            config("xy", "ppm-full", selection="first"))
        assert result.score.recall == 1.0
        assert result.score.precision == 1.0

    def test_ppm_degrades_under_adaptive_routing(self):
        result = run_identification_experiment(config("fully-adaptive", "ppm-full"))
        assert not result.score.exact

    def test_dpm_ambiguous_even_when_deterministic(self):
        result = run_identification_experiment(
            config("xy", "dpm", selection="first"))
        assert result.score.recall == 1.0      # table covers true sources...
        assert result.score.precision < 1.0    # ...but collides with innocents

    def test_dpm_worse_under_adaptive_routing(self):
        det = run_identification_experiment(config("xy", "dpm", selection="first"))
        ada = run_identification_experiment(config("fully-adaptive", "dpm"))
        assert ada.score.f1 <= det.score.f1

    def test_ddpm_on_torus_and_hypercube(self):
        for topo in (TopologySpec("torus", (6, 6)),
                     TopologySpec("hypercube", (5,))):
            result = run_identification_experiment(
                config("minimal-adaptive", "ddpm", topology=topo))
            assert result.score.exact, topo


class TestRunnerMechanics:
    def test_result_record_is_flat(self):
        record = run_identification_experiment(config("xy", "ddpm")).to_record()
        assert record["marking"] == "ddpm"
        assert isinstance(record["precision"], float)
        assert record["num_attackers"] == 3

    def test_background_traffic_not_analyzed(self):
        result = run_identification_experiment(
            config("minimal-adaptive", "ddpm", background_rate=5.0))
        # Only attack packets reach the analysis; suspects stay exact.
        assert result.score.exact

    def test_sweep_preserves_order(self):
        results = sweep([config("xy", "ddpm"), config("xy", "dpm")])
        assert [r.marking for r in results] == ["ddpm", "dpm"]

    def test_explicit_attackers_respected(self):
        result = run_identification_experiment(
            config("xy", "ddpm", attackers=(1, 2)))
        assert result.attackers == (1, 2)

    def test_reproducibility(self):
        a = run_identification_experiment(config("fully-adaptive", "ddpm"))
        b = run_identification_experiment(config("fully-adaptive", "ddpm"))
        assert a.attackers == b.attackers
        assert a.packets_delivered == b.packets_delivered
