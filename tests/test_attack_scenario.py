"""Declarative attack scenarios: registry dispatch, round-trips, arming.

Covers the scenario-layer contracts: every registered spec kind
round-trips ``to_dict -> ATTACKS.create -> to_dict`` exactly, unknown
kinds raise the structured UnknownNameError with sorted choices, the
legacy ``launch_attack(num_attackers=...)`` shim is bit-identical to the
spec form (and warns), arming through the new API never perturbs the
shared cluster RNG stream, and VolumetricMixSpec merges are exact
component-sum unions (pinned again property-style by hypothesis).
"""

import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Cluster, DdpmScheme, Torus, registry
from repro.attack.scenario import (
    AckFloodAttackSpec,
    AttackCampaign,
    AttackSpec,
    FloodAttackSpec,
    PoissonBackgroundSpec,
    PulsingAttackSpec,
    ReflectionAmplificationSpec,
    RequestReplySessionSpec,
    SynFloodAttackSpec,
    VolumetricMixSpec,
    WormAttackSpec,
)
from repro.core.config import (
    ExperimentConfig,
    MarkingSpec,
    RoutingSpec,
    SelectionSpec,
    TopologySpec,
)
from repro.errors import AttackError, ConfigurationError, UnknownNameError
from repro.network.packet import PacketKind
from repro.routing import FullyAdaptiveRouter

#: one representative instance per registered kind, non-default fields set
#: so round-trips exercise real payloads, not just defaults.
REPRESENTATIVES = {
    "flood": FloodAttackSpec(num_attackers=2, rate_per_attacker=25.0,
                             duration=1.5, background_rate=1.0,
                             spoofing="random"),
    "syn-flood": SynFloodAttackSpec(attackers=(1, 5), duration=2.0),
    "ack-flood": AckFloodAttackSpec(num_attackers=4, start=0.5),
    "pulsing": PulsingAttackSpec(num_attackers=2, rate_per_attacker=90.0,
                                 period=0.5, duty_cycle=0.25, duration=2.0),
    "reflection": ReflectionAmplificationSpec(num_attackers=2,
                                              num_reflectors=3,
                                              amplification=5,
                                              request_rate=15.0),
    "worm": WormAttackSpec(seeds=(3, 7), scan_rate=4.0, horizon=10.0),
    "benign-poisson": PoissonBackgroundSpec(pattern="hotspot", rate=3.0,
                                            hotspot_fraction=0.4),
    "benign-sessions": RequestReplySessionSpec(session_rate=1.0,
                                               requests_per_session=2),
    "mix": VolumetricMixSpec(
        components=(FloodAttackSpec(num_attackers=2, duration=1.0),
                    PoissonBackgroundSpec(rate=2.0, duration=1.0)),
        weights=(2.0, 1.0)),
}


def small_cluster(seed=7, dims=(4, 4)):
    """A 4x4 adaptive torus with DDPM marking — the scenario test bed."""
    return Cluster(Torus(dims), FullyAdaptiveRouter(), marking=DdpmScheme(),
                   seed=seed)


class TestRegistry:
    def test_every_kind_has_a_representative(self):
        assert set(REPRESENTATIVES) == set(registry.ATTACKS.names())

    def test_names_are_sorted(self):
        names = list(registry.ATTACKS.names())
        assert names == sorted(names)

    @pytest.mark.parametrize("kind", sorted(REPRESENTATIVES))
    def test_round_trip_through_registry(self, kind):
        spec = REPRESENTATIVES[kind]
        data = spec.to_dict()
        assert data["kind"] == kind
        rebuilt = registry.ATTACKS.create(kind, data)
        assert isinstance(rebuilt, AttackSpec)
        assert rebuilt.to_dict() == data
        assert rebuilt == spec

    def test_unknown_kind_raises_structured_error(self):
        with pytest.raises(UnknownNameError) as err:
            AttackCampaign.from_dict({"specs": [{"kind": "teardrop"}]})
        assert err.value.kind == "attack"
        assert err.value.choices == tuple(sorted(registry.ATTACKS.names()))

    def test_missing_kind_key_rejected(self):
        with pytest.raises(AttackError, match="'kind'"):
            AttackCampaign.from_dict({"specs": [{"num_attackers": 2}]})


class TestValidation:
    def test_zero_rate_rejected(self):
        with pytest.raises(AttackError, match="rate_per_attacker"):
            FloodAttackSpec(rate_per_attacker=0.0)

    def test_unknown_spoofing_rejected(self):
        with pytest.raises(AttackError, match="spoofing"):
            FloodAttackSpec(spoofing="carrier-pigeon")

    def test_unknown_key_rejected(self):
        with pytest.raises(AttackError, match="unknown keys"):
            FloodAttackSpec.from_dict({"kind": "flood", "warp_factor": 9})

    def test_duty_cycle_bounds(self):
        with pytest.raises(AttackError, match="duty_cycle"):
            PulsingAttackSpec(duty_cycle=1.5)
        with pytest.raises(AttackError, match="duty_cycle"):
            PulsingAttackSpec(duty_cycle=0.0)

    def test_worm_needs_seeds(self):
        with pytest.raises(AttackError, match="seeds"):
            WormAttackSpec(seeds=())

    def test_mix_rejects_nested_mix(self):
        inner = VolumetricMixSpec(components=(FloodAttackSpec(),))
        with pytest.raises(AttackError, match="nest"):
            VolumetricMixSpec(components=(inner,))

    def test_mix_weight_length_mismatch(self):
        with pytest.raises(AttackError, match="weights"):
            VolumetricMixSpec(components=(FloodAttackSpec(),),
                              weights=(1.0, 2.0))

    def test_empty_campaign_rejected(self):
        with pytest.raises(AttackError, match="at least one"):
            AttackCampaign(())

    def test_pulsing_mean_rate(self):
        spec = PulsingAttackSpec(rate_per_attacker=100.0, duty_cycle=0.2)
        assert spec.mean_rate_per_attacker == pytest.approx(20.0)


class TestLegacyShim:
    def test_legacy_kwargs_warn(self):
        cluster = small_cluster()
        victim = cluster.default_victim()
        with pytest.warns(DeprecationWarning, match="launch_attack"):
            cluster.launch_attack(victim=victim, num_attackers=2,
                                  attack_rate_per_node=30.0, duration=1.0)

    def test_legacy_and_spec_forms_bit_identical(self):
        old = small_cluster(seed=42)
        new = small_cluster(seed=42)
        victim_old = old.default_victim()
        victim_new = new.default_victim()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            truth_old = old.launch_attack(victim=victim_old, num_attackers=2,
                                          attack_rate_per_node=30.0,
                                          duration=1.0)
        truth_new = new.launch_attack(
            FloodAttackSpec(num_attackers=2, rate_per_attacker=30.0,
                            duration=1.0),
            victim=victim_new)
        def signature(truth):
            # packet ids are process-global, so compare content instead
            return [(p.true_source, p.destination_node, p.flow_id, p.seq,
                     p.header.src) for p in truth.attack_packets]

        assert truth_old.attackers == truth_new.attackers
        assert signature(truth_old) == signature(truth_new)
        old.run()
        new.run()
        assert (old.fabric.counters.as_dict()
                == new.fabric.counters.as_dict())

    def test_unknown_legacy_kwarg_rejected(self):
        cluster = small_cluster()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match="unknown"):
                cluster.launch_attack(warp_factor=9)

    def test_spec_plus_legacy_kwargs_rejected(self):
        cluster = small_cluster()
        with pytest.raises(ConfigurationError):
            cluster.launch_attack(FloodAttackSpec(), num_attackers=2)


class TestRngIsolation:
    def test_arming_leaves_cluster_stream_untouched(self):
        # The determinism regression for satellite 6: arming via the new
        # API draws from a dedicated "attack:<i>:<kind>" stream, so the
        # shared cluster stream advances identically with or without it.
        armed = small_cluster(seed=11)
        idle = small_cluster(seed=11)
        armed.launch_attack(PulsingAttackSpec(num_attackers=2, duration=1.0),
                            victim=armed.default_victim())
        assert armed.rng.random(8).tolist() == idle.rng.random(8).tolist()

    def test_placement_uses_spec_stream(self):
        # Same seed, two arming orders: the flood's placement must not
        # depend on whether another spec armed first (each gets its own
        # sequence-indexed stream, so only the *index* matters).
        a = small_cluster(seed=13)
        b = small_cluster(seed=13)
        va, vb = a.default_victim(), b.default_victim()
        spec = FloodAttackSpec(num_attackers=3, duration=0.5)
        first = a.launch_attack(spec, victim=va)
        b.launch_attack(PoissonBackgroundSpec(duration=0.5), victim=vb)
        again = b.launch_attack(spec, victim=vb)
        assert first.attackers != () and again.attackers != ()
        # stream index differs (0 vs 1), so placements are independent
        # draws; both exclude the victim either way.
        assert va not in first.attackers
        assert vb not in again.attackers


class TestArming:
    def test_reflection_reply_path(self):
        cluster = small_cluster(seed=3)
        victim = cluster.default_victim()
        truth = cluster.launch_attack(
            ReflectionAmplificationSpec(num_attackers=2, num_reflectors=3,
                                        request_rate=10.0, amplification=3,
                                        duration=1.0),
            victim=victim)
        assert set(truth.attackers).isdisjoint(truth.reflectors)
        assert victim not in truth.attackers
        assert victim not in truth.reflectors
        requests = len(truth.attack_packets)
        cluster.run()
        replies = [p for p in truth.attack_packets
                   if p.kind is PacketKind.REPLY]
        assert len(truth.attack_packets) > requests
        assert replies, "reflectors should have amplified delivered requests"
        assert all(p.true_source in truth.reflectors for p in replies)
        assert truth.is_attack_packet(replies[0])

    def test_pulsing_packets_inside_bursts(self):
        cluster = small_cluster(seed=5)
        victim = cluster.default_victim()
        spec = PulsingAttackSpec(num_attackers=2, rate_per_attacker=80.0,
                                 period=1.0, duty_cycle=0.25, duration=4.0)
        truth = cluster.launch_attack(spec, victim=victim)
        assert truth.attack_packets
        cluster.run()
        for packet in truth.attack_packets:
            phase = packet.injected_at % spec.period
            assert phase <= spec.period * spec.duty_cycle + 1e-9

    def test_benign_specs_have_no_attackers(self):
        cluster = small_cluster(seed=9)
        victim = cluster.default_victim()
        poisson = cluster.launch_attack(PoissonBackgroundSpec(duration=1.0),
                                        victim=victim)
        sessions = cluster.launch_attack(
            RequestReplySessionSpec(duration=1.0), victim=victim)
        assert poisson.attackers == () and sessions.attackers == ()
        assert poisson.background_packets and not poisson.attack_packets
        before = len(sessions.background_packets)
        cluster.run()
        # the session servers answered delivered requests with replies
        assert len(sessions.background_packets) > before
        assert any(p.kind is PacketKind.REPLY
                   for p in sessions.background_packets)

    def test_campaign_merges_ground_truth(self):
        cluster = small_cluster(seed=21)
        victim = cluster.default_victim()
        campaign = AttackCampaign((
            FloodAttackSpec(num_attackers=2, duration=1.0),
            PoissonBackgroundSpec(duration=1.0),
        ))
        merged = cluster.launch_attacks(campaign, victim=victim)
        parts = merged.extra["scenario_results"]
        assert len(parts) == 2
        assert merged.attackers == parts[0].attackers
        assert len(merged.attack_packets) == len(parts[0].attack_packets)
        assert len(merged.background_packets) == (
            len(parts[0].background_packets)
            + len(parts[1].background_packets))

    def test_mix_is_exact_component_union(self):
        cluster = small_cluster(seed=17)
        victim = cluster.default_victim()
        mix = VolumetricMixSpec(
            components=(FloodAttackSpec(num_attackers=2, duration=1.0),
                        PoissonBackgroundSpec(rate=2.0, duration=1.0)),
            weights=(1.5, 0.5))
        truth = cluster.launch_attack(mix, victim=victim)
        counts = truth.extra["mix_components"]
        assert [c["kind"] for c in counts] == ["flood", "benign-poisson"]
        assert len(truth.attack_packets) == sum(c["attack_packets"]
                                                for c in counts)
        assert len(truth.background_packets) == sum(c["background_packets"]
                                                    for c in counts)

    def test_mix_absorbs_dynamic_reflection_replies(self):
        # Packets a component registers *after* absorb (reflector replies)
        # must propagate into the merged result via the parent back-link.
        cluster = small_cluster(seed=29)
        victim = cluster.default_victim()
        mix = VolumetricMixSpec(components=(
            ReflectionAmplificationSpec(num_attackers=1, num_reflectors=2,
                                        request_rate=8.0, amplification=2,
                                        duration=1.0),))
        truth = cluster.launch_attack(mix, victim=victim)
        scheduled = len(truth.attack_packets)
        cluster.run()
        assert len(truth.attack_packets) > scheduled
        assert any(p.kind is PacketKind.REPLY for p in truth.attack_packets)


class TestMixProperty:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(weights=st.lists(st.floats(0.1, 3.0, allow_nan=False),
                            min_size=2, max_size=3),
           seed=st.integers(0, 2**12))
    def test_mix_packet_count_is_component_sum(self, weights, seed):
        components = (FloodAttackSpec(num_attackers=2, rate_per_attacker=20.0,
                                      duration=0.5),
                      PulsingAttackSpec(num_attackers=1, duration=0.5),
                      PoissonBackgroundSpec(rate=1.0, duration=0.5))
        mix = VolumetricMixSpec(components=components[:len(weights)],
                                weights=tuple(weights))
        cluster = small_cluster(seed=seed)
        truth = cluster.launch_attack(mix, victim=cluster.default_victim())
        counts = truth.extra["mix_components"]
        assert len(truth.attack_packets) == sum(c["attack_packets"]
                                                for c in counts)
        assert len(truth.background_packets) == sum(c["background_packets"]
                                                    for c in counts)


class TestConfigIntegration:
    BASE = dict(
        topology=TopologySpec("torus", (4, 4)),
        routing=RoutingSpec("fully-adaptive"),
        marking=MarkingSpec("ddpm"),
        selection=SelectionSpec("random"),
        seed=1,
    )

    def test_attacks_key_omitted_when_unset(self):
        config = ExperimentConfig(**self.BASE)
        assert "attacks" not in config.to_dict()
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_cache_key_stable_without_attacks(self):
        # adding the field must not disturb pre-existing cache keys
        explicit = ExperimentConfig(**self.BASE, attacks=None)
        implicit = ExperimentConfig(**self.BASE)
        assert explicit.canonical_json() == implicit.canonical_json()

    def test_config_round_trips_with_campaign(self):
        campaign = AttackCampaign((
            ReflectionAmplificationSpec(num_attackers=2, num_reflectors=3),
            PoissonBackgroundSpec(pattern="transpose"),
        ))
        config = ExperimentConfig(**self.BASE, attacks=campaign)
        data = config.to_dict()
        assert data["attacks"] == campaign.to_dict()
        rebuilt = ExperimentConfig.from_dict(data)
        assert rebuilt == config
        assert rebuilt.canonical_json() == config.canonical_json()

    def test_config_unknown_attack_kind_raises(self):
        data = ExperimentConfig(**self.BASE).to_dict()
        data["attacks"] = {"specs": [{"kind": "smurf"}]}
        with pytest.raises(UnknownNameError) as err:
            ExperimentConfig.from_dict(data)
        assert "smurf" in str(err.value)
        assert err.value.choices == tuple(sorted(registry.ATTACKS.names()))
