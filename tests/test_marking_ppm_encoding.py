"""Unit tests for PPM mark encoders and Gray labeling."""

import pytest

from repro.errors import FieldLayoutError, MarkingError
from repro.marking.ppm_encoding import (
    BitDifferenceEncoder,
    EdgeMark,
    FullIndexEncoder,
    XorEncoder,
    gray_label,
    gray_label_bits,
    gray_unlabel,
)
from repro.topology import Hypercube, Mesh, Torus
from repro.util.bitops import popcount


class TestGrayLabels:
    def test_paper_figure3a_labels(self, mesh44):
        """The paper's Figure 3(a) node labels are per-dimension Gray codes."""
        expected = {
            (0, 1): 0b0001, (0, 2): 0b0011, (0, 3): 0b0010,
            (1, 3): 0b0110, (2, 3): 0b1110, (1, 1): 0b0101, (1, 2): 0b0111,
        }
        for coord, label in expected.items():
            assert gray_label(mesh44, mesh44.index(coord)) == label

    def test_labels_unique(self, mesh44):
        labels = {gray_label(mesh44, n) for n in mesh44.nodes()}
        assert len(labels) == mesh44.num_nodes

    def test_unlabel_roundtrip(self, mesh44):
        for node in mesh44.nodes():
            assert gray_unlabel(mesh44, gray_label(mesh44, node)) == node

    def test_mesh_neighbors_differ_one_bit(self, mesh44):
        for u, v in mesh44.links.all_links:
            assert popcount(gray_label(mesh44, u) ^ gray_label(mesh44, v)) == 1

    def test_pow2_torus_wrap_differs_one_bit(self, torus44):
        # Reflected Gray codes are cyclic for power-of-two lengths.
        for u, v in torus44.links.all_links:
            assert popcount(gray_label(torus44, u) ^ gray_label(torus44, v)) == 1

    def test_nonpow2_mesh_unused_codes_rejected(self):
        mesh = Mesh((3, 3))
        with pytest.raises(MarkingError):
            gray_unlabel(mesh, 0b0101 ^ 0b0111)  # decodes coord >= 3

    def test_label_bits(self, mesh44, cube4):
        assert gray_label_bits(mesh44) == 4
        assert gray_label_bits(cube4) == 4


class TestFullIndexEncoder:
    def test_attach_computes_geometry(self, mesh44):
        enc = FullIndexEncoder()
        enc.attach(mesh44)
        assert enc.label_bits == 4
        assert enc.distance_bits == 3  # diameter 6 -> values 0..6
        assert enc.layout.used_bits == 11  # paper: 11 bits < 16

    def test_too_large_network_rejected(self):
        enc = FullIndexEncoder()
        with pytest.raises(FieldLayoutError):
            enc.attach(Mesh((16, 16)))  # Table 1: 8x8 is the max

    def test_max_table1_network_accepted(self):
        enc = FullIndexEncoder()
        enc.attach(Mesh((8, 8)))
        assert enc.layout.used_bits == 16

    def test_write_and_decode_edge(self, mesh44):
        enc = FullIndexEncoder()
        enc.attach(mesh44)
        u, v = mesh44.index((2, 0)), mesh44.index((2, 1))
        word = enc.write_start(0, u)
        word = enc.write_continue(word, v)
        word = enc.write_continue(word, mesh44.index((2, 2)))
        assert enc.read_distance(word) == 2
        (mark,) = enc.candidate_edges(word, mesh44.index((1, 2)))
        assert (mark.start, mark.end, mark.distance) == (u, v, 2)

    def test_distance_zero_edge_ends_at_victim(self, mesh44):
        enc = FullIndexEncoder()
        enc.attach(mesh44)
        last_switch = mesh44.index((1, 3))
        victim = mesh44.index((2, 3))
        word = enc.write_start(0, last_switch)
        (mark,) = enc.candidate_edges(word, victim)
        assert mark == EdgeMark(last_switch, None, 0)

    def test_nonadjacent_claim_filtered(self, mesh44):
        enc = FullIndexEncoder()
        enc.attach(mesh44)
        word = enc.write_start(0, mesh44.index((0, 0)))
        # Distance-0 mark decoded at a victim that is NOT a neighbor.
        assert enc.candidate_edges(word, mesh44.index((3, 3))) == ()

    def test_distance_saturates(self, mesh44):
        enc = FullIndexEncoder()
        enc.attach(mesh44)
        word = enc.write_start(0, 0)
        for _ in range(20):
            word = enc.write_continue(word, 1)
        assert enc.read_distance(word) == enc.max_distance


class TestXorEncoder:
    def test_xor_value_is_one_hot(self, mesh44):
        enc = XorEncoder()
        enc.attach(mesh44)
        u, v = mesh44.index((1, 1)), mesh44.index((1, 2))
        word = enc.write_start(0, u)
        word = enc.write_continue(word, v)
        values = enc.layout.unpack(word)
        assert popcount(values["edge"]) == 1  # the paper's §4.2 observation

    def test_ambiguity_multiple_candidates(self, mesh44):
        # An XOR value maps to every parallel edge: ambiguity by design.
        enc = XorEncoder()
        enc.attach(mesh44)
        u, v = mesh44.index((1, 1)), mesh44.index((1, 2))
        word = enc.write_start(0, u)
        word = enc.write_continue(word, v)
        word = enc.write_continue(word, mesh44.index((1, 3)))
        marks = enc.candidate_edges(word, mesh44.index((2, 3)))
        assert len(marks) > 2
        assert any(m.start == u and m.end == v for m in marks)

    def test_rejects_non_onebit_topology(self):
        enc = XorEncoder()
        with pytest.raises(MarkingError):
            enc.attach(Torus((5, 5)))  # non-pow2 wrap breaks one-bit adjacency

    def test_accepts_hypercube(self, cube4):
        enc = XorEncoder()
        enc.attach(cube4)
        word = enc.write_start(0, 0b0000)
        word = enc.write_continue(word, 0b0001)
        marks = enc.candidate_edges(word, 0b0011)
        assert any(m.start == 0b0000 and m.end == 0b0001 for m in marks)


class TestBitDifferenceEncoder:
    def test_attach_geometry(self, mesh44):
        enc = BitDifferenceEncoder()
        enc.attach(mesh44)
        # 4 label + 2 bitpos + 3 distance = 9 bits.
        assert enc.layout.used_bits == 4 + 2 + 3

    def test_paper_figure3a_marks(self, mesh44):
        """Victim 1110 receives (0001, 1, 3): start label 0001, bit 1, d=3."""
        enc = BitDifferenceEncoder()
        enc.attach(mesh44)
        path_labels = [0b0001, 0b0011, 0b0010, 0b0110]  # then victim 1110
        nodes = [gray_unlabel(mesh44, lab) for lab in path_labels]
        word = enc.write_start(0, nodes[0])
        for nxt in nodes[1:]:
            word = enc.write_continue(word, nxt)
        values = enc.layout.unpack(word)
        assert values["start"] == 0b0001
        assert values["bitpos"] == 1     # 0001 ^ 0011 = 0010 -> bit 1
        assert values["distance"] == 3

    def test_decode_edge(self, mesh44):
        enc = BitDifferenceEncoder()
        enc.attach(mesh44)
        u, v = mesh44.index((0, 1)), mesh44.index((0, 2))
        word = enc.write_start(0, u)
        word = enc.write_continue(word, v)
        (mark,) = enc.candidate_edges(word, mesh44.index((0, 3)))
        assert (mark.start, mark.end, mark.distance) == (u, v, 1)

    def test_table2_limit(self):
        enc = BitDifferenceEncoder()
        enc.attach(Mesh((16, 16)))  # computed Table 2 max
        assert enc.layout.used_bits <= 16
        with pytest.raises(FieldLayoutError):
            BitDifferenceEncoder().attach(Mesh((32, 32)))

    def test_rejects_non_onebit_topology(self):
        with pytest.raises(MarkingError):
            BitDifferenceEncoder().attach(Torus((6, 6)))
