"""Unit tests for SubfieldLayout bit packing."""

import pytest

from repro.errors import FieldLayoutError, FieldOverflowError
from repro.marking.field import SubfieldLayout


class TestLayoutConstruction:
    def test_fits_checked_at_construction(self):
        SubfieldLayout([("a", 8), ("b", 8)])  # exactly 16
        with pytest.raises(FieldLayoutError):
            SubfieldLayout([("a", 9), ("b", 8)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(FieldLayoutError):
            SubfieldLayout([("a", 4), ("a", 4)])

    def test_bad_slot_shape_rejected(self):
        with pytest.raises(FieldLayoutError):
            SubfieldLayout([("a",)])
        with pytest.raises(FieldLayoutError):
            SubfieldLayout([("a", 0)])

    def test_used_bits(self):
        layout = SubfieldLayout([("a", 5), ("b", 6)])
        assert layout.used_bits == 11
        assert layout.names == ("a", "b")


class TestPackUnpack:
    def test_roundtrip_unsigned(self):
        layout = SubfieldLayout([("x", 4), ("y", 4), ("d", 3)])
        values = {"x": 9, "y": 14, "d": 5}
        assert layout.unpack(layout.pack(values)) == values

    def test_roundtrip_signed(self):
        layout = SubfieldLayout([("v0", 8, True), ("v1", 8, True)])
        for v0 in (-128, -1, 0, 127):
            for v1 in (-5, 64):
                values = {"v0": v0, "v1": v1}
                assert layout.unpack(layout.pack(values)) == values

    def test_slots_independent(self):
        layout = SubfieldLayout([("a", 8, True), ("b", 8, True)])
        word = layout.pack({"a": -1, "b": 0})
        assert layout.unpack(word)["b"] == 0

    def test_paper_ddpm_2d_example(self):
        # §5: "each half of the MF contains the distance in one dimension."
        layout = SubfieldLayout([("v0", 8, True), ("v1", 8, True)])
        word = layout.pack({"v0": 1, "v1": 2})
        assert layout.unpack(word) == {"v0": 1, "v1": 2}
        assert word < (1 << 16)

    def test_overflow_is_error_not_truncation(self):
        layout = SubfieldLayout([("v", 4, True)])
        with pytest.raises(FieldOverflowError):
            layout.pack({"v": 8})
        with pytest.raises(FieldOverflowError):
            layout.pack({"v": -9})

    def test_unsigned_negative_rejected(self):
        layout = SubfieldLayout([("v", 4)])
        with pytest.raises(FieldOverflowError):
            layout.pack({"v": -1})

    def test_missing_and_extra_keys_rejected(self):
        layout = SubfieldLayout([("a", 4), ("b", 4)])
        with pytest.raises(FieldLayoutError):
            layout.pack({"a": 1})
        with pytest.raises(FieldLayoutError):
            layout.pack({"a": 1, "b": 2, "c": 3})

    def test_unpack_range_checked(self):
        layout = SubfieldLayout([("a", 4)], total_bits=8)
        with pytest.raises(FieldOverflowError):
            layout.unpack(256)
        with pytest.raises(FieldOverflowError):
            layout.unpack(-1)


class TestIntrospection:
    def test_width_and_range(self):
        layout = SubfieldLayout([("u", 5), ("s", 6, True)])
        assert layout.width("u") == 5
        assert layout.value_range("u") == (0, 31)
        assert layout.value_range("s") == (-32, 31)

    def test_unknown_slot(self):
        layout = SubfieldLayout([("u", 5)])
        with pytest.raises(FieldLayoutError):
            layout.width("nope")
