"""Sharded multi-process engine: construction, sync, merge, and plumbing.

Bit-level identity with the batched engine is property-tested in
``test_properties_batched_equivalence.py``; this file covers the sharded
engine's own machinery — shard-count validation, worker transports,
conservation, the unsupported-feature guards (each naming its fallback),
config/CLI plumbing, profiler window counters, and the legacy
``launch_attack`` deprecation funnel.
"""

import json
import warnings

import numpy as np
import pytest

from repro.core.cluster import Cluster
from repro.core.config import (ExperimentConfig, MarkingSpec, RoutingSpec,
                               SelectionSpec, TopologySpec)
from repro.engine.profile import EventProfiler
from repro.errors import ConfigurationError
from repro.marking.ddpm import DdpmScheme
from repro.routing import DimensionOrderRouter
from repro.routing.selection import FirstCandidatePolicy
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus


def _noop():
    return None


def _sharded_cluster(shards=2, mode="serial", seed=0, dims=(4, 4),
                     profile=None):
    cluster = Cluster(Torus(dims), DimensionOrderRouter(),
                      marking=DdpmScheme(), seed=seed, engine="sharded",
                      shards=shards, profile=profile)
    cluster.fabric.shard_mode = mode
    cluster.fabric.selection = FirstCandidatePolicy()
    return cluster


def _flood(cluster, duration=0.5, num_attackers=2, rate=25.0):
    return cluster.launch_ddos(victim=cluster.default_victim(),
                               num_attackers=num_attackers,
                               attack_rate_per_node=rate,
                               duration=duration, background_rate=1.0)


# ----------------------------------------------------------------------
# Construction and validation
# ----------------------------------------------------------------------
class TestConstruction:
    def test_engine_name(self):
        cluster = _sharded_cluster()
        assert cluster.fabric.engine_name == "sharded"
        assert cluster.engine == "sharded"

    def test_default_shard_count(self):
        cluster = Cluster(Mesh((4, 4)), DimensionOrderRouter(),
                          marking=DdpmScheme(), engine="sharded")
        assert cluster.fabric.shards == cluster.fabric.DEFAULT_SHARDS

    def test_rejects_non_int_shards(self):
        with pytest.raises(ConfigurationError, match="shards"):
            _sharded_cluster(shards="2")
        with pytest.raises(ConfigurationError, match="shards"):
            _sharded_cluster(shards=True)

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ConfigurationError, match="shards"):
            _sharded_cluster(shards=0)

    def test_rejects_more_shards_than_nodes(self):
        cluster = _sharded_cluster(shards=17, dims=(4, 4))
        _flood(cluster)
        with pytest.raises(ConfigurationError, match="num_nodes"):
            cluster.run()

    def test_shards_kwarg_rejected_for_other_engines(self):
        with pytest.raises(ConfigurationError, match="sharded"):
            Cluster(Mesh((4, 4)), DimensionOrderRouter(),
                    marking=DdpmScheme(), engine="batched", shards=2)

    def test_bad_shard_mode_rejected(self):
        cluster = _sharded_cluster(mode="threads")
        _flood(cluster)
        with pytest.raises(ConfigurationError, match="shard mode"):
            cluster.run()


# ----------------------------------------------------------------------
# Conservation and determinism across transports and shard counts
# ----------------------------------------------------------------------
class TestConservation:
    def test_packet_conservation(self):
        cluster = _sharded_cluster(shards=4)
        _flood(cluster)
        cluster.run()
        counters = cluster.fabric.counters
        assert counters["injected"] > 0
        assert counters["injected"] == (counters["delivered"]
                                        + counters["dropped"])

    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_results_independent_of_shard_count(self, shards):
        """Shard count is an execution detail: every K gives the same
        observable results (the equivalence suite pins them to batched)."""
        results = {}
        for k in (2, shards):
            cluster = _sharded_cluster(shards=k, seed=7)
            _flood(cluster)
            cluster.run()
            nics = cluster.fabric.nics
            results[k] = (
                tuple(n.n_delivered for n in nics),
                int(cluster.fabric.counters["delivered"]),
                int(cluster.fabric.counters["dropped"]),
                cluster.sim.now,
            )
        assert results[shards] == results[2]

    def test_process_and_serial_transports_identical(self):
        results = {}
        for mode in ("serial", "process"):
            cluster = _sharded_cluster(shards=3, mode=mode, seed=11)
            _flood(cluster)
            cluster.run()
            results[mode] = (
                tuple(n.n_delivered for n in cluster.fabric.nics),
                dict(cluster.fabric._drop_reasons),
                cluster.sim.now,
                cluster.fabric.latency.count,
            )
        assert results["process"] == results["serial"]

    def test_empty_capture_is_a_noop(self):
        cluster = _sharded_cluster()
        now = cluster.sim.now
        cluster.run()
        assert cluster.sim.now == now
        assert cluster.fabric.counters["injected"] == 0


# ----------------------------------------------------------------------
# Unsupported features refuse loudly, naming the fallback
# ----------------------------------------------------------------------
class TestGuards:
    def test_run_until_names_batched_fallback(self):
        cluster = _sharded_cluster()
        _flood(cluster)
        with pytest.raises(ConfigurationError,
                           match="engine='batched'"):
            cluster.run(until=0.25)

    def test_pending_discrete_events_rejected(self):
        cluster = _sharded_cluster()
        cluster.sim.schedule_call(0.1, _noop, label="probe")
        _flood(cluster)
        with pytest.raises(ConfigurationError, match="engine='exact'"):
            cluster.run()

    def test_per_packet_hooks_rejected(self):
        cluster = _sharded_cluster()
        cluster.fabric.injection_filter = lambda packet: True
        _flood(cluster)
        with pytest.raises(ConfigurationError, match="engine='exact'"):
            cluster.run()

    def test_per_packet_delivery_handler_rejected(self):
        cluster = _sharded_cluster()
        with pytest.raises(ConfigurationError, match="engine='exact'"):
            cluster.fabric.add_delivery_handler(0, lambda event: None)


# ----------------------------------------------------------------------
# Config / CLI plumbing
# ----------------------------------------------------------------------
class TestConfigPlumbing:
    def _config(self, **overrides):
        base = dict(
            topology=TopologySpec("torus", (4, 4)),
            routing=RoutingSpec("dor"),
            marking=MarkingSpec("ddpm"),
            selection=SelectionSpec("first"),
            seed=1, num_attackers=2, attack_rate_per_node=20.0,
            duration=0.5, background_rate=1.0,
        )
        base.update(overrides)
        return ExperimentConfig(**base)

    def test_shards_omitted_when_unset(self):
        """Cache-key stability: configs that never mention shards keep
        their exact pre-sharded canonical JSON."""
        config = self._config()
        data = config.to_dict()
        assert "shards" not in data
        assert "engine" not in data

    def test_round_trip_with_shards(self):
        config = self._config(engine="sharded", shards=4)
        rebuilt = ExperimentConfig.from_dict(
            json.loads(config.canonical_json()))
        assert rebuilt == config
        assert rebuilt.shards == 4

    def test_bad_shards_value_rejected(self):
        data = self._config(engine="sharded").to_dict()
        data["shards"] = 0
        with pytest.raises(ConfigurationError, match="shards"):
            ExperimentConfig.from_dict(data)
        data["shards"] = True
        with pytest.raises(ConfigurationError, match="shards"):
            ExperimentConfig.from_dict(data)

    def test_from_config_builds_sharded_fabric(self):
        config = self._config(engine="sharded", shards=3)
        cluster = Cluster.from_config(config)
        assert cluster.fabric.engine_name == "sharded"
        assert cluster.fabric.shards == 3

    def test_experiment_end_to_end(self):
        from repro.core.experiment import run_identification_experiment

        config = self._config(engine="sharded", shards=2)
        result = run_identification_experiment(config)
        assert result.packets_delivered > 0

    def test_cli_flag_smoke(self, capsys):
        from repro.cli import main

        code = main(["experiment", "--topology", "torus", "--dims", "4", "4",
                     "--marking", "ddpm", "--routing", "dor",
                     "--engine", "sharded", "--shards", "2",
                     "--attackers", "2", "--duration", "0.5"])
        assert code == 0
        assert "delivered" in capsys.readouterr().out

    def test_cli_shards_requires_sharded_engine(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--engine sharded"):
            main(["experiment", "--topology", "torus", "--dims", "4", "4",
                  "--marking", "ddpm", "--routing", "dor",
                  "--shards", "2"])


# ----------------------------------------------------------------------
# Profiler window counters
# ----------------------------------------------------------------------
class TestProfiler:
    def test_shard_window_counters(self):
        profiler = EventProfiler()
        cluster = _sharded_cluster(shards=4, profile=profiler)
        _flood(cluster)
        cluster.run()
        stats = profiler.shard_window_stats()
        assert stats["windows"] > 0
        # A 4-shard torus flood toward one victim must cross boundaries.
        assert stats["boundary_rows"] > 0
        assert stats["max_boundary_occupancy"] > 0
        assert stats["max_boundary_occupancy"] <= stats["boundary_rows"]
        assert "shard-window@sync" in profiler.as_dict()

    def test_counters_reset(self):
        profiler = EventProfiler()
        profiler.record_shard_window(5, 1)
        profiler.reset()
        assert profiler.shard_window_stats() == {
            "windows": 0, "boundary_rows": 0,
            "max_boundary_occupancy": 0, "sync_stalls": 0}


# ----------------------------------------------------------------------
# Legacy launch_attack funnel on the sharded path (satellite 6)
# ----------------------------------------------------------------------
class TestLegacyLaunchAttackWarning:
    def test_sharded_warns_exactly_once_per_call(self):
        cluster = _sharded_cluster()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cluster.launch_attack(num_attackers=2, duration=0.5)
        relevant = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert len(relevant) == 1
        assert "AttackSpec" in str(relevant[0].message)

    def test_sharded_repeat_calls_warn_again(self):
        cluster = _sharded_cluster()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cluster.launch_attack(num_attackers=2, duration=0.5)
            cluster.launch_attack(num_attackers=2, duration=0.5)
        relevant = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert len(relevant) == 2

    def test_sharded_run_completes_after_legacy_launch(self):
        cluster = _sharded_cluster()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            cluster.launch_attack(num_attackers=2, duration=0.5)
        cluster.run()
        assert cluster.fabric.counters["delivered"] > 0


# ----------------------------------------------------------------------
# Merge-layer details
# ----------------------------------------------------------------------
class TestMerge:
    def test_latency_statistics_match_batched(self):
        observed = {}
        for engine in ("batched", "sharded"):
            cluster = Cluster(
                Torus((4, 4)), DimensionOrderRouter(), marking=DdpmScheme(),
                seed=2, engine=engine,
                shards=3 if engine == "sharded" else None)
            if engine == "sharded":
                cluster.fabric.shard_mode = "serial"
            cluster.fabric.selection = FirstCandidatePolicy()
            _flood(cluster)
            cluster.run()
            latency = cluster.fabric.latency
            observed[engine] = (latency.count, latency.min, latency.max,
                                pytest.approx(latency.mean, rel=1e-12))
        assert observed["sharded"] == observed["batched"]

    def test_hop_histogram_matches_batched(self):
        observed = {}
        for engine in ("batched", "sharded"):
            cluster = Cluster(
                Torus((4, 4)), DimensionOrderRouter(), marking=DdpmScheme(),
                seed=2, engine=engine,
                shards=4 if engine == "sharded" else None)
            if engine == "sharded":
                cluster.fabric.shard_mode = "serial"
            cluster.fabric.selection = FirstCandidatePolicy()
            _flood(cluster)
            cluster.run()
            observed[engine] = dict(cluster.fabric.hop_histogram.counts())
        assert observed["sharded"] == observed["batched"]

    def test_sink_stream_time_ordered(self):
        """The merged delivery stream each sink sees is time-sorted even
        though it is assembled from per-shard fragments."""
        cluster = _sharded_cluster(shards=4, seed=9)
        victim = cluster.default_victim()
        seen = []
        cluster.fabric.attach_delivery_sink(
            victim, lambda batch: seen.append(np.asarray(batch.times).copy()))
        _flood(cluster)
        cluster.run()
        times = np.concatenate(seen) if seen else np.empty(0)
        assert times.size > 0
        assert np.all(np.diff(times) >= 0)
