"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.topology == "mesh"
        assert args.dims == [6, 6]
        assert args.marking == "ddpm"

    def test_invalid_marking_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--marking", "magic"])


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out
        assert "16384" in out and "65536" in out

    def test_demo_exact(self, capsys):
        assert main(["demo", "--seed", "3"]) == 0
        assert "exact identification" in capsys.readouterr().out

    def test_experiment_single(self, capsys):
        code = main(["experiment", "--marking", "ddpm", "--duration", "1.0",
                     "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "precision: 1.0" in out

    def test_experiment_hypercube(self, capsys):
        code = main(["experiment", "--topology", "hypercube", "--dims", "4",
                     "--duration", "1.0"])
        assert code == 0
        assert "recall: 1.0" in capsys.readouterr().out

    def test_experiment_replicated(self, capsys):
        code = main(["experiment", "--marking", "ddpm", "--duration", "1.0",
                     "--seeds", "1", "2", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "95% CI" in out
        assert "precision" in out

    def test_experiment_replicated_parallel_matches_serial(self, capsys):
        serial_args = ["experiment", "--marking", "ddpm", "--duration", "1.0",
                       "--dims", "4", "4", "--seeds", "1", "2"]
        assert main(serial_args) == 0
        serial_out = capsys.readouterr().out
        assert main(serial_args + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # identical metric table; only the trailing runs/jobs line differs
        assert serial_out.splitlines()[:-1] == parallel_out.splitlines()[:-1]
        assert "jobs 2" in parallel_out

    def test_experiment_cache_dir_warm_run_simulates_nothing(self, capsys,
                                                             tmp_path):
        args = ["experiment", "--marking", "ddpm", "--duration", "1.0",
                "--dims", "4", "4", "--seeds", "1", "2",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "simulated 2" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "simulated 0" in warm and "cache hits 2" in warm

    def test_experiment_single_with_cache(self, capsys, tmp_path):
        args = ["experiment", "--marking", "ddpm", "--duration", "1.0",
                "--dims", "4", "4", "--seed", "5",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        assert "simulated 1" in capsys.readouterr().out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cache hits 1" in out and "precision" in out
