"""Partition properties: purity, stability, balance, boundary coverage.

The sharded engine's determinism argument leans on the partitioner being a
pure function of ``(topology, k)`` — same assignment on every run, host,
and process count — and on every inter-shard edge belonging to exactly one
boundary queue pair. Both are property-tested here under
hypothesis-shuffled topologies and shard counts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.topology import (Hypercube, Mesh, Torus, partition_topology)


def _build(kind, dims):
    if kind == "mesh":
        return Mesh(dims)
    if kind == "torus":
        return Torus(dims)
    return Hypercube(dims[0])


@st.composite
def partition_case(draw):
    kind = draw(st.sampled_from(["mesh", "torus", "hypercube"]))
    if kind == "hypercube":
        dims = (draw(st.integers(2, 5)),)
    elif kind == "torus":
        # torus dimensions of 2 are rejected (a 2-ring collapses onto one
        # physical link), so draw from {3..6}.
        dims = tuple(draw(st.lists(st.integers(3, 6), min_size=1,
                                   max_size=3)))
    else:
        dims = tuple(draw(st.lists(st.integers(2, 6), min_size=1,
                                   max_size=3)))
    topology = _build(kind, dims)
    k = draw(st.integers(1, min(topology.num_nodes, 8)))
    return kind, dims, k


@settings(max_examples=40, deadline=None)
@given(partition_case())
def test_partition_pure_and_stable(case):
    """Rebuilding the same topology gives a bit-identical assignment —
    there is no RNG, wall-clock, or iteration-order input to drift."""
    kind, dims, k = case
    first = partition_topology(_build(kind, dims), k)
    second = partition_topology(_build(kind, dims), k)
    assert np.array_equal(first.shard_of, second.shard_of)
    assert first.method == second.method
    assert first.cut_edges == second.cut_edges


@settings(max_examples=40, deadline=None)
@given(partition_case())
def test_partition_covers_every_node_once(case):
    kind, dims, k = case
    topology = _build(kind, dims)
    partition = partition_topology(topology, k)
    assert partition.shard_of.size == topology.num_nodes
    assert partition.shard_of.min() >= 0
    assert partition.shard_of.max() <= k - 1
    sizes = partition.shard_sizes()
    assert int(sizes.sum()) == topology.num_nodes
    assert all(size > 0 for size in sizes), "empty shard"
    # nodes_of partitions the node set
    union = np.concatenate([partition.nodes_of(s) for s in range(k)])
    assert sorted(union.tolist()) == list(range(topology.num_nodes))


@settings(max_examples=40, deadline=None)
@given(partition_case())
def test_every_cut_edge_in_exactly_one_boundary_pair(case):
    """Each inter-shard edge appears in exactly one boundary queue pair:
    edges_between over boundary_pairs() tiles cut_edges with no overlap."""
    kind, dims, k = case
    topology = _build(kind, dims)
    partition = partition_topology(topology, k)
    # Every topology edge is either intra-shard or a cut edge.
    edges = topology.to_edge_list()
    cut = set(partition.cut_edges)
    for u, v in edges:
        crosses = partition.shard_of[u] != partition.shard_of[v]
        assert ((u, v) in cut) == crosses
    # The boundary pairs tile the cut exactly once.
    seen = []
    for a, b in partition.boundary_pairs():
        assert a < b
        between = partition.edges_between(a, b)
        assert between, "boundary pair with no edges"
        seen.extend(between)
    assert sorted(seen) == sorted(cut)
    assert len(seen) == len(set(seen)), "edge assigned to two pairs"


@settings(max_examples=30, deadline=None)
@given(partition_case())
def test_slab_partitions_balanced_within_one_plane(case):
    kind, dims, k = case
    topology = _build(kind, dims)
    partition = partition_topology(topology, k)
    sizes = partition.shard_sizes()
    if partition.method == "slab":
        axis_len = max(dims)
        plane = topology.num_nodes // axis_len
        assert int(sizes.max() - sizes.min()) <= plane
    elif partition.method == "bfs-chop":
        # chop + balance-preserving refinement: within one node of even
        assert int(sizes.max() - sizes.min()) <= 1


def test_mesh_slab_is_contiguous_bands():
    partition = partition_topology(Mesh((4, 4)), 2)
    assert partition.method == "slab"
    assert partition.shard_sizes().tolist() == [8, 8]
    coords = Mesh((4, 4))
    # Bands are monotone in the cut coordinate: crossing a band boundary
    # never goes backwards.
    axis_coord = [coords.coord(i)[0] for i in range(16)]
    by_shard = {}
    for node, shard in enumerate(partition.shard_of):
        by_shard.setdefault(int(shard), []).append(axis_coord[node])
    assert max(by_shard[0]) < min(by_shard[1])


def test_k_equals_one_is_trivial():
    partition = partition_topology(Torus((4, 4)), 1)
    assert partition.method == "trivial"
    assert partition.cut_edges == ()
    assert partition.boundary_pairs() == ()


def test_invalid_k_rejected():
    topology = Mesh((4, 4))
    with pytest.raises(ConfigurationError):
        partition_topology(topology, 0)
    with pytest.raises(ConfigurationError):
        partition_topology(topology, 17)
    with pytest.raises(ConfigurationError):
        partition_topology(topology, True)
    with pytest.raises(ConfigurationError):
        partition_topology(topology, 2.0)
