"""Unit tests for repro.util.bitops."""

import pytest

from repro.util.bitops import (
    bit_length_for,
    bit_positions,
    bits_required_signed,
    bits_required_unsigned,
    extract_bits,
    gray_decode,
    gray_encode,
    hamming_distance,
    insert_bits,
    lowest_set_bit,
    popcount,
    to_signed,
    to_unsigned,
)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_all_ones(self):
        assert popcount(0xFFFF) == 16

    def test_single_bits(self):
        for i in range(30):
            assert popcount(1 << i) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)


class TestHamming:
    def test_identical(self):
        assert hamming_distance(0b1010, 0b1010) == 0

    def test_complement(self):
        assert hamming_distance(0b1111, 0b0000) == 4

    def test_symmetry(self):
        assert hamming_distance(13, 27) == hamming_distance(27, 13)


class TestLowestSetBit:
    def test_powers(self):
        for i in range(20):
            assert lowest_set_bit(1 << i) == i

    def test_mixed(self):
        assert lowest_set_bit(0b1011000) == 3

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            lowest_set_bit(0)


class TestBitPositions:
    def test_empty(self):
        assert bit_positions(0) == []

    def test_mixed(self):
        assert bit_positions(0b10110) == [1, 2, 4]


class TestBitLengthFor:
    def test_one_item_needs_zero_bits(self):
        assert bit_length_for(1) == 0

    def test_powers_of_two(self):
        assert bit_length_for(2) == 1
        assert bit_length_for(16) == 4
        assert bit_length_for(17) == 5

    def test_paper_mesh_labels(self):
        # 4x4 mesh: 16 nodes need 4 bits (paper Figure 3 labels).
        assert bit_length_for(16) == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            bit_length_for(0)


class TestBitsRequired:
    def test_unsigned(self):
        assert bits_required_unsigned(0) == 1
        assert bits_required_unsigned(255) == 8
        assert bits_required_unsigned(256) == 9

    def test_signed_symmetric(self):
        assert bits_required_signed(-8, 7) == 4
        assert bits_required_signed(-9, 7) == 5

    def test_signed_positive_only(self):
        assert bits_required_signed(0, 127) == 8

    def test_empty_range(self):
        with pytest.raises(ValueError):
            bits_required_signed(5, 4)


class TestTwosComplement:
    @pytest.mark.parametrize("value", [-128, -1, 0, 1, 127])
    def test_roundtrip_8bit(self, value):
        assert to_signed(to_unsigned(value, 8), 8) == value

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            to_unsigned(128, 8)
        with pytest.raises(ValueError):
            to_unsigned(-129, 8)

    def test_known_encodings(self):
        assert to_unsigned(-1, 8) == 0xFF
        assert to_unsigned(-128, 8) == 0x80

    def test_to_signed_rejects_wide_words(self):
        with pytest.raises(ValueError):
            to_signed(256, 8)


class TestBitSlices:
    def test_extract(self):
        assert extract_bits(0b1101_0110, 1, 3) == 0b011

    def test_insert_then_extract(self):
        word = insert_bits(0, 4, 5, 0b10101)
        assert extract_bits(word, 4, 5) == 0b10101

    def test_insert_preserves_other_bits(self):
        word = 0xFFFF
        word = insert_bits(word, 4, 4, 0)
        assert word == 0xFF0F

    def test_insert_rejects_oversized(self):
        with pytest.raises(ValueError):
            insert_bits(0, 0, 3, 8)


class TestGray:
    def test_roundtrip(self):
        for value in range(512):
            assert gray_decode(gray_encode(value)) == value

    def test_adjacent_values_differ_one_bit(self):
        for value in range(255):
            diff = gray_encode(value) ^ gray_encode(value + 1)
            assert popcount(diff) == 1

    def test_known_sequence(self):
        assert [gray_encode(i) for i in range(4)] == [0b00, 0b01, 0b11, 0b10]
