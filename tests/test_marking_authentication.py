"""Unit tests for authenticated DDPM (the §6.2 switch-compromise discussion)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, IdentificationError
from repro.marking.authentication import AuthenticatedDdpmScheme
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import DimensionOrderRouter, MinimalAdaptiveRouter, RandomPolicy, walk_route
from repro.topology import Mesh


@pytest.fixture
def scheme(mesh44):
    return AuthenticatedDdpmScheme.with_random_keys(mesh44, np.random.default_rng(0))


def send(scheme, topology, src, dst, router=None, select=None):
    router = router if router is not None else DimensionOrderRouter()
    select = select if select is not None else (lambda c, cur: c[0])
    path = walk_route(topology, router, src, dst, select)
    packet = Packet(IPHeader(1, 2), src, dst)
    scheme.on_inject(packet, src)
    for u, v in zip(path[:-1], path[1:]):
        scheme.on_hop(packet, u, v)
    return packet


class TestHappyPath:
    def test_clean_chain_verifies(self, scheme, mesh44):
        packet = send(scheme, mesh44, 0, 15)
        result = scheme.verify(packet, 15)
        assert result.valid, result.reason

    def test_identify_verified_matches_plain_identify(self, scheme, mesh44):
        packet = send(scheme, mesh44, 3, 15)
        assert scheme.identify_verified(packet, 15) == 3

    def test_verifies_under_adaptive_routing(self, scheme, mesh44):
        rng = np.random.default_rng(1)
        for _ in range(10):
            packet = send(scheme, mesh44, 0, 15, MinimalAdaptiveRouter(),
                          RandomPolicy(rng).binder())
            assert scheme.verify(packet, 15).valid

    def test_trail_length_is_hops_plus_one(self, scheme, mesh44):
        packet = send(scheme, mesh44, 0, 15)
        trail = scheme._trail_of(packet)
        assert len(trail) == mesh44.min_hops(0, 15) + 1


class TestTamperDetection:
    def test_forged_mf_detected(self, scheme, mesh44):
        packet = send(scheme, mesh44, 0, 15)
        # A compromised host rewrites the final MF to frame node 9.
        packet.header.identification = scheme.layout.encode(
            mesh44.distance_vector(9, 15))
        result = scheme.verify(packet, 15)
        assert not result.valid
        assert "differs from last attested" in result.reason

    def test_tampered_trail_entry_detected(self, scheme, mesh44):
        packet = send(scheme, mesh44, 0, 15)
        trail = scheme._trail_of(packet)
        entry = trail[2]
        trail[2] = entry._replace(mf_after=entry.mf_after ^ 1)
        result = scheme.verify(packet, 15)
        assert not result.valid

    def test_compromised_switch_wrong_mac_detected(self, scheme, mesh44):
        packet = send(scheme, mesh44, 0, 15)
        trail = scheme._trail_of(packet)
        trail[1] = trail[1]._replace(mac=trail[1].mac ^ 0xFF)
        result = scheme.verify(packet, 15)
        assert not result.valid
        assert "MAC mismatch" in result.reason
        assert result.tampered_at == 1

    def test_non_link_hop_claim_detected(self, scheme, mesh44):
        packet = send(scheme, mesh44, 0, 15)
        trail = scheme._trail_of(packet)
        # Splice out an intermediate entry: the remaining chain claims a
        # two-hop jump, which is not a physical link.
        del trail[2]
        result = scheme.verify(packet, 15)
        assert not result.valid

    def test_missing_trail_detected(self, scheme, mesh44):
        packet = Packet(IPHeader(1, 2), 0, 15)
        result = scheme.verify(packet, 15)
        assert not result.valid
        assert "missing audit trail" in result.reason

    def test_identify_verified_raises_on_tamper(self, scheme, mesh44):
        packet = send(scheme, mesh44, 0, 15)
        packet.header.identification ^= 1
        with pytest.raises(IdentificationError):
            scheme.identify_verified(packet, 15)


class TestConfiguration:
    def test_missing_keys_rejected(self, mesh44):
        scheme = AuthenticatedDdpmScheme({0: 1, 1: 2})
        with pytest.raises(ConfigurationError):
            scheme.attach(mesh44)

    def test_empty_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            AuthenticatedDdpmScheme({})

    def test_mac_cost_reported(self, scheme):
        assert scheme.per_hop_operations()["mac"] == 1
