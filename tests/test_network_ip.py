"""Unit tests for the IP header model."""

import pytest

from repro.errors import ConfigurationError
from repro.network.ip import DEFAULT_TTL, IPHeader, MF_MAX, format_ip, parse_ip


class TestAddressFormatting:
    def test_roundtrip(self):
        for dotted in ("0.0.0.0", "10.0.0.1", "255.255.255.255", "192.168.1.77"):
            assert format_ip(parse_ip(dotted)) == dotted

    def test_known_value(self):
        assert format_ip(0x0A000001) == "10.0.0.1"
        assert parse_ip("10.0.0.1") == 0x0A000001

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "a.b.c.d", "256.0.0.1"])
    def test_bad_strings(self, bad):
        with pytest.raises(ConfigurationError):
            parse_ip(bad)

    def test_bad_int(self):
        with pytest.raises(ConfigurationError):
            format_ip(1 << 32)


class TestHeader:
    def test_defaults(self):
        h = IPHeader(1, 2)
        assert h.ttl == DEFAULT_TTL
        assert h.identification == 0
        assert h.total_length == IPHeader.HEADER_BYTES

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IPHeader(-1, 2)
        with pytest.raises(ConfigurationError):
            IPHeader(1, 2, identification=MF_MAX + 1)
        with pytest.raises(ConfigurationError):
            IPHeader(1, 2, ttl=0)
        with pytest.raises(ConfigurationError):
            IPHeader(1, 2, total_length=10)

    def test_ttl_decrement_floors_at_zero(self):
        h = IPHeader(1, 2, ttl=2)
        assert h.decrement_ttl() == 1
        assert h.decrement_ttl() == 0
        assert h.decrement_ttl() == 0

    def test_copy_is_independent(self):
        h = IPHeader(1, 2, identification=0xABCD)
        c = h.copy()
        c.identification = 0
        assert h.identification == 0xABCD

    def test_checksum_changes_with_marking(self):
        # A marking write must invalidate the previous checksum — the
        # realistic per-switch cost the paper's §6.2 discussion implies.
        h = IPHeader(1, 2, identification=0x1234)
        before = h.checksum()
        h.identification = 0x1235
        assert h.checksum() != before

    def test_checksum_verifies(self):
        # One's-complement sum of header-with-checksum is 0xFFFF.
        h = IPHeader(parse_ip("10.0.0.1"), parse_ip("10.0.0.2"),
                     identification=0xBEEF, ttl=37, total_length=84)
        words = [
            (4 << 12) | (5 << 8),
            h.total_length,
            h.identification,
            0,
            (h.ttl << 8) | h.protocol,
            (h.src >> 16) & 0xFFFF, h.src & 0xFFFF,
            (h.dst >> 16) & 0xFFFF, h.dst & 0xFFFF,
            h.checksum(),
        ]
        total = sum(words)
        while total > 0xFFFF:
            total = (total & 0xFFFF) + (total >> 16)
        assert total == 0xFFFF
