"""Unit tests for the fat-tree (paper §6.3 indirect-network counterpoint)."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.marking import DpmScheme
from repro.marking.ddpm_layout import DdpmLayout
from repro.routing import TableRouter, walk_route
from repro.routing.selection import RandomPolicy
from repro.topology import FatTree
from repro.topology.properties import diameter, is_connected


@pytest.fixture
def ft4():
    return FatTree(4)


class TestShape:
    def test_k4_counts(self, ft4):
        # k=4: 16 hosts, 8 edge, 8 agg, 4 core = 36 nodes.
        assert ft4.num_hosts == 16
        assert ft4.num_nodes == 36

    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            FatTree(3)

    def test_tiers(self, ft4):
        assert ft4.tier_of(0) == "host"
        assert ft4.tier_of(16) == "edge"
        assert ft4.tier_of(24) == "aggregation"
        assert ft4.tier_of(32) == "core"
        with pytest.raises(TopologyError):
            ft4.tier_of(36)

    def test_host_degree_is_one(self, ft4):
        for host in ft4.hosts():
            assert len(ft4.neighbors(host)) == 1
            assert ft4.tier_of(ft4.neighbors(host)[0]) == "edge"

    def test_edge_switch_degree(self, ft4):
        # k/2 hosts + k/2 aggregation uplinks.
        for node in range(16, 24):
            assert len(ft4.neighbors(node)) == 4

    def test_core_connects_all_pods(self, ft4):
        for core in range(32, 36):
            pods = {ft4.pod_of(agg) for agg in ft4.neighbors(core)}
            assert pods == {0, 1, 2, 3}

    def test_connected_and_diameter(self, ft4):
        assert is_connected(ft4)
        # host -> edge -> agg -> core -> agg -> edge -> host.
        assert diameter(ft4) == 6

    def test_pod_of_core_rejected(self, ft4):
        with pytest.raises(TopologyError):
            ft4.pod_of(32)


class TestRoutingOnFatTree:
    def test_table_routing_host_to_host(self, ft4, rng):
        router = TableRouter(ft4)
        select = RandomPolicy(rng).binder()
        # Cross-pod pair must climb to the core: 6 hops.
        src, dst = 0, 15
        path = walk_route(ft4, router, src, dst, select)
        assert len(path) - 1 == 6
        tiers = [ft4.tier_of(n) for n in path]
        assert "core" in tiers

    def test_same_edge_pair_is_two_hops(self, ft4, rng):
        router = TableRouter(ft4)
        path = walk_route(ft4, router, 0, 1, RandomPolicy(rng).binder())
        assert len(path) - 1 == 2  # host -> edge -> host

    def test_multipath_diversity_across_core(self, ft4):
        router = TableRouter(ft4)
        rng = np.random.default_rng(0)
        select = RandomPolicy(rng).binder()
        paths = {tuple(walk_route(ft4, router, 0, 15, select))
                 for _ in range(60)}
        assert len(paths) > 2  # ECMP-style diversity


class TestPaperSection63:
    def test_ddpm_structurally_unavailable(self, ft4):
        from repro.errors import MarkingError

        with pytest.raises(MarkingError):
            DdpmLayout.for_topology(ft4)

    def test_dpm_still_works(self, ft4):
        # Label-based schemes only need unique switch indexes.
        scheme = DpmScheme()
        scheme.attach(ft4)
        assert scheme.node_bit(0) in (0, 1)
