"""Unit and integration tests for edge-sampling PPM."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.marking import FullIndexEncoder, PpmScheme, XorEncoder
from repro.network import Fabric
from repro.network.ip import IPHeader
from repro.network.packet import Packet
from repro.routing import (
    DimensionOrderRouter,
    MinimalAdaptiveRouter,
    RandomPolicy,
    walk_route,
)
from repro.topology import Mesh


def make_scheme(probability=0.3, seed=0, encoder=None):
    return PpmScheme(encoder if encoder is not None else FullIndexEncoder(),
                     probability, np.random.default_rng(seed))


def run_flow(scheme, topology, src, dst, count, router=None, select=None,
             analysis=None, misroute_budget=4):
    router = router if router is not None else DimensionOrderRouter()
    select = select if select is not None else (lambda c, cur: c[0])
    analysis = analysis if analysis is not None else scheme.new_victim_analysis(dst)
    for _ in range(count):
        path = walk_route(topology, router, src, dst, select,
                          misroute_budget=misroute_budget)
        packet = Packet(IPHeader(1, 2), src, dst)
        scheme.on_inject(packet, src)
        for u, v in zip(path[:-1], path[1:]):
            scheme.on_hop(packet, u, v)
        analysis.observe(packet)
    return analysis


class TestSwitchSide:
    def test_probability_validated(self):
        with pytest.raises(ConfigurationError):
            PpmScheme(FullIndexEncoder(), 1.5, np.random.default_rng(0))

    def test_rng_required(self):
        with pytest.raises(ConfigurationError):
            PpmScheme(FullIndexEncoder(), 0.1, None)

    def test_p1_always_marks_last_switch(self, mesh44):
        scheme = make_scheme(probability=1.0)
        scheme.attach(mesh44)
        packet = Packet(IPHeader(1, 2), 0, 15)
        scheme.on_inject(packet, 0)
        path = walk_route(mesh44, DimensionOrderRouter(), 0, 15,
                          lambda c, cur: c[0])
        for u, v in zip(path[:-1], path[1:]):
            scheme.on_hop(packet, u, v)
        enc = scheme.encoder
        (mark,) = enc.candidate_edges(packet.header.identification, 15)
        assert mark.start == path[-2]
        assert mark.distance == 0

    def test_p0_never_marks(self, mesh44):
        scheme = make_scheme(probability=0.0)
        scheme.attach(mesh44)
        packet = Packet(IPHeader(1, 2), 0, 15)
        scheme.on_inject(packet, 0)
        scheme.on_hop(packet, 0, 1)
        scheme.on_hop(packet, 1, 2)
        # Only distance increments happened (else-branch).
        assert scheme.encoder.read_distance(packet.header.identification) == 2


class TestDeterministicReconstruction:
    def test_single_source_identified(self, mesh44):
        scheme = make_scheme(probability=0.25, seed=1)
        scheme.attach(mesh44)
        analysis = run_flow(scheme, mesh44, 0, 15, 500)
        assert analysis.suspects() == frozenset({0})

    def test_multiple_sources_identified(self, mesh44):
        # Sources chosen so no XY path is a suffix of another's.
        scheme = make_scheme(probability=0.25, seed=2)
        scheme.attach(mesh44)
        analysis = scheme.new_victim_analysis(15)
        for src in (0, 3, 5):
            run_flow(scheme, mesh44, src, 15, 500, analysis=analysis)
        assert analysis.suspects() == frozenset({0, 3, 5})

    def test_attacker_on_anothers_path_absorbed(self, mesh44):
        # Known PPM limitation: an attacker sitting on another attacker's
        # path is indistinguishable from a transit switch.
        scheme = make_scheme(probability=0.25, seed=2)
        scheme.attach(mesh44)
        analysis = scheme.new_victim_analysis(15)
        for src in (0, 12):  # 12 lies on 0's dimension-order path to 15
            run_flow(scheme, mesh44, src, 15, 500, analysis=analysis)
        assert analysis.suspects() == frozenset({0})

    def test_reconstruction_edges_form_true_path(self, mesh44):
        scheme = make_scheme(probability=0.3, seed=3)
        scheme.attach(mesh44)
        analysis = run_flow(scheme, mesh44, 0, 15, 800)
        graph = analysis.reconstruction()
        path = walk_route(mesh44, DimensionOrderRouter(), 0, 15,
                          lambda c, cur: c[0])
        true_edges = set(zip(path[:-1], path[1:]))
        accepted = set(graph.edges)
        assert true_edges <= accepted

    def test_insufficient_packets_incomplete(self, mesh44):
        # With very few packets the farthest mark is unlikely to arrive.
        scheme = make_scheme(probability=0.05, seed=4)
        scheme.attach(mesh44)
        analysis = run_flow(scheme, mesh44, 0, 15, 3)
        assert 0 not in analysis.suspects() or len(analysis.suspects()) >= 1


class TestAdaptiveDegradation:
    """The paper's §4.2 claim: adaptivity breaks PPM reconstruction.

    Three measurable failure modes, each pinned by a test below: the
    reconstruction graph inflates (work + ambiguity), minimal-adaptive
    coverage absorbs a co-located attacker (recall loss), and non-minimal
    adaptivity manufactures spurious sources (precision loss).
    """

    def _run_with(self, router, select, seed, sources, count=600):
        topology = Mesh((5, 5))
        victim = topology.num_nodes - 1
        scheme = make_scheme(probability=0.25, seed=seed)
        scheme.attach(Mesh((5, 5)))
        analysis = scheme.new_victim_analysis(victim)
        for src in sources:
            run_flow(scheme, topology, src, victim, count,
                     router=router, select=select, analysis=analysis)
        return analysis.suspects(), analysis.reconstruction()

    def test_deterministic_baseline_exact(self):
        suspects, _ = self._run_with(DimensionOrderRouter(),
                                     lambda c, cur: c[0], 5, (0, 4))
        assert suspects == frozenset({0, 4})

    def test_reconstruction_graph_inflates(self):
        _, det_graph = self._run_with(DimensionOrderRouter(),
                                      lambda c, cur: c[0], 5, (0, 4))
        rng = np.random.default_rng(6)
        _, ada_graph = self._run_with(MinimalAdaptiveRouter(),
                                      RandomPolicy(rng).binder(), 6, (0, 4))
        assert len(ada_graph.edges) > 2 * len(det_graph.edges)

    def test_minimal_adaptive_absorbs_colocated_attacker(self):
        # Attacker 4 = (0,4) lies on minimal paths from 0 = (0,0) to the
        # victim corner; the wandering DAG swallows it (recall loss).
        rng = np.random.default_rng(6)
        suspects, _ = self._run_with(MinimalAdaptiveRouter(),
                                     RandomPolicy(rng).binder(), 6, (0, 4))
        assert 4 not in suspects

    def test_nonminimal_adaptive_inflates_suspects(self):
        from repro.routing import FullyAdaptiveRouter

        rng = np.random.default_rng(7)
        suspects, _ = self._run_with(
            FullyAdaptiveRouter(prefer_minimal=False),
            RandomPolicy(rng).binder(), 7, (0, 4))
        assert len(suspects) > 2  # spurious sources (precision loss)


class TestMinMarkCount:
    def test_noise_filter_drops_rare_marks(self, mesh44):
        scheme = make_scheme(probability=0.3, seed=7)
        scheme.attach(mesh44)
        analysis = scheme.new_victim_analysis(15)
        analysis.min_mark_count = 10**9  # filter everything
        run_flow(scheme, mesh44, 0, 15, 50, analysis=analysis)
        assert analysis.collected_edges() == ()
        assert analysis.suspects() == frozenset()

    def test_min_mark_count_validated(self, mesh44):
        scheme = make_scheme()
        scheme.attach(mesh44)
        from repro.marking.ppm import PpmVictimAnalysis

        with pytest.raises(ConfigurationError):
            PpmVictimAnalysis(scheme, 15, min_mark_count=0)


class TestFabricIntegration:
    def test_end_to_end_on_fabric(self):
        topology = Mesh((4, 4))
        scheme = make_scheme(probability=0.3, seed=8)
        fab = Fabric(topology, DimensionOrderRouter(), marking=scheme)
        analysis = scheme.new_victim_analysis(15)
        fab.add_delivery_handler(15, lambda ev: analysis.observe(ev.packet))
        for i in range(600):
            fab.inject(fab.make_packet(0, 15), delay=i * 0.002)
        fab.run()
        assert analysis.suspects() == frozenset({0})
