"""Equivalence properties: batched cohort engine vs the exact engine.

DESIGN.md §12's contract, executable: on workloads the batched engine
supports, suspect sets and per-node delivered counts must equal the exact
per-packet engine's — for every registered marking scheme (probabilistic
schemes pinned at p=1.0 so both engines make the same always-mark
decision), across small mesh/torus/hypercube topologies, with and without
static link faults, under hypothesis-shuffled seeds. Schemes the batched
engine refuses (ddpm-auth, hddpm) must refuse loudly, not silently differ.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import registry
from repro.core.cluster import Cluster
from repro.core.config import MarkingSpec, RoutingSpec, TopologySpec
from repro.core.experiment import _victim_analysis_for
from repro.errors import (ConfigurationError, MarkingError,
                          UnroutablePacketError)
from repro.routing.selection import FirstCandidatePolicy

#: schemes the cohort engine cannot vectorize (interactive/authenticated)
UNSUPPORTED_SCHEMES = {"ddpm-auth", "hddpm"}

TOPOLOGIES = [("mesh", (4, 4)), ("torus", (4, 4)), ("hypercube", (3,))]


def _run(engine, marking, routing, topo_kind, dims, *, seed=3,
         failed_links=(), selection="first", shards=None, shard_mode=None):
    """One flood + identification run; returns the comparable observables."""
    topo = TopologySpec(topo_kind, tuple(dims)).build()
    router = RoutingSpec(routing).build(np.random.default_rng(1))
    scheme = MarkingSpec(marking, probability=1.0).build(
        np.random.default_rng(2), topo)
    cluster = Cluster(topo, router, marking=scheme, seed=seed, engine=engine,
                      shards=shards)
    if shard_mode is not None:
        cluster.fabric.shard_mode = shard_mode
    if selection == "first":
        cluster.fabric.selection = FirstCandidatePolicy()
    for u, v in failed_links:
        cluster.fabric.fail_link(u, v)
    victim = cluster.default_victim()
    analysis = None
    if scheme is not None:
        analysis = _victim_analysis_for(cluster, victim)
        if engine == "exact":
            cluster.fabric.add_delivery_handler(
                victim, lambda event: analysis.observe(event.packet))
        else:
            cluster.fabric.attach_delivery_sink(victim, analysis.observe_batch)
    cluster.launch_ddos(victim=victim, num_attackers=3,
                        attack_rate_per_node=25.0, duration=1.0,
                        background_rate=2.0)
    cluster.run()
    nics = cluster.fabric.nics
    per_node = tuple(nics[node].n_delivered
                     for node in range(topo.num_nodes))
    suspects = frozenset() if analysis is None else frozenset(analysis.suspects())
    return (suspects, per_node,
            int(cluster.fabric.counters["delivered"]),
            int(cluster.fabric.counters["dropped"]))


# ----------------------------------------------------------------------
# Every registered scheme, every topology family
# ----------------------------------------------------------------------
@pytest.mark.parametrize("topo_kind,dims", TOPOLOGIES)
@pytest.mark.parametrize("marking", sorted(registry.MARKING.names()))
def test_registered_scheme_equivalence(marking, topo_kind, dims):
    if marking in UNSUPPORTED_SCHEMES:
        # ddpm-auth: the cohort engine refuses (ConfigurationError);
        # hddpm additionally refuses plain topologies at attach time
        # (MarkingError) before the engine guard can fire.
        with pytest.raises((ConfigurationError, MarkingError)):
            _run("batched", marking, "dor", topo_kind, dims)
        return
    exact = _run("exact", marking, "dor", topo_kind, dims)
    batched = _run("batched", marking, "dor", topo_kind, dims)
    if marking != "ppm-fragment":
        # Fragment marking draws a random fragment *offset* per mark even
        # at p=1.0; the two engines consume different RNG streams, so its
        # suspect set is only statistically equivalent (DESIGN.md §12) —
        # delivery accounting below must still match exactly.
        assert batched[0] == exact[0], "suspect sets diverged"
    assert batched[1] == exact[1], "per-node delivered counts diverged"
    assert batched[2:] == exact[2:], "delivered/dropped totals diverged"


# ----------------------------------------------------------------------
# Sharded engine: identical (not just equivalent) to batched
# ----------------------------------------------------------------------
@pytest.mark.parametrize("topo_kind,dims", TOPOLOGIES)
@pytest.mark.parametrize("marking", sorted(registry.MARKING.names()))
def test_sharded_identical_to_batched(marking, topo_kind, dims):
    """Sharding must not change results at all: suspect sets, per-node
    delivered counts, and totals match the single-process batched engine
    bit for bit (DESIGN.md §14), for every registered scheme the batched
    engine supports — ppm-fragment excluded from the suspect-set check only
    because its per-shard RNG streams draw different fragment offsets."""
    if marking in UNSUPPORTED_SCHEMES:
        with pytest.raises((ConfigurationError, MarkingError)):
            _run("sharded", marking, "dor", topo_kind, dims, shards=2,
                 shard_mode="serial")
        return
    batched = _run("batched", marking, "dor", topo_kind, dims)
    sharded = _run("sharded", marking, "dor", topo_kind, dims, shards=3,
                   shard_mode="serial")
    if marking != "ppm-fragment":
        assert sharded[0] == batched[0], "suspect sets diverged"
    assert sharded[1:] == batched[1:], "delivery accounting diverged"


def test_sharded_process_mode_identical_to_batched():
    """The fork-worker transport produces the same bits as serial sharding
    (and therefore as the batched engine)."""
    batched = _run("batched", "ddpm", "dor", "torus", (4, 4))
    process = _run("sharded", "ddpm", "dor", "torus", (4, 4), shards=3,
                   shard_mode="process")
    assert process == batched


def test_sharded_detector_alarm_time_identical():
    """The rate detector alarms at the exact same simulated time under the
    sharded engine as under batched: the merged delivery stream is
    identical, so alarm times are too (no tolerance needed)."""
    from repro.defense.detection import RateThresholdDetector

    times = {}
    for engine in ("batched", "sharded"):
        topo = TopologySpec("mesh", (4, 4)).build()
        router = RoutingSpec("dor").build(np.random.default_rng(1))
        scheme = MarkingSpec("ddpm").build(np.random.default_rng(2), topo)
        cluster = Cluster(topo, router, marking=scheme, seed=5, engine=engine,
                          shards=2 if engine == "sharded" else None)
        if engine == "sharded":
            cluster.fabric.shard_mode = "serial"
        cluster.fabric.selection = FirstCandidatePolicy()
        victim = cluster.default_victim()
        detector = RateThresholdDetector(window=0.5, threshold_rate=30.0)
        cluster.fabric.attach_delivery_sink(victim, detector.observe_batch)
        cluster.launch_ddos(victim=victim, num_attackers=3,
                            attack_rate_per_node=40.0, duration=1.0)
        cluster.run()
        assert detector.alarm_time is not None, f"{engine}: no alarm raised"
        times[engine] = detector.alarm_time
    assert times["sharded"] == times["batched"]


# ----------------------------------------------------------------------
# Shuffled seeds, adaptive routing, optional static link faults
# ----------------------------------------------------------------------
@st.composite
def equivalence_case(draw):
    topo_kind, dims = draw(st.sampled_from(TOPOLOGIES))
    # DDPM's word is a pure function of (src, dst) — exact under any
    # routing; path-sensitive schemes need a deterministic router for
    # packet-for-packet comparability.
    # ppm-fragment is absent: its random offset draws make suspect sets
    # statistically (not exactly) equivalent — see the matrix test above.
    marking = draw(st.sampled_from(
        ["ddpm", "dpm", "ppm-full", "ppm-xor", "ppm-bitdiff",
         "ppm-advanced"]))
    routing = (draw(st.sampled_from(["dor", "minimal-adaptive"]))
               if marking == "ddpm" else "dor")
    seed = draw(st.integers(0, 2**16))
    failed = ()
    if draw(st.booleans()):
        topo = TopologySpec(topo_kind, tuple(dims)).build()
        node = draw(st.integers(0, topo.num_nodes - 2))
        neighbors = topo.neighbors(node)
        failed = ((node, neighbors[draw(st.integers(0, len(neighbors) - 1))]),)
    return topo_kind, dims, marking, routing, seed, failed


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(equivalence_case())
def test_equivalence_shuffled(case):
    topo_kind, dims, marking, routing, seed, failed = case
    try:
        exact = _run("exact", marking, routing, topo_kind, dims, seed=seed,
                     failed_links=failed)
    except UnroutablePacketError:
        # The drawn fault disconnects the deterministic route; that is a
        # workload property, not an engine property — discard the example.
        assume(False)
        return
    batched = _run("batched", marking, routing, topo_kind, dims, seed=seed,
                   failed_links=failed)
    assert batched == exact


# ----------------------------------------------------------------------
# Detector alarm times
# ----------------------------------------------------------------------
def test_detector_alarm_time_equivalent():
    """The rate detector alarms at the same simulated time in both modes."""
    from repro.defense.detection import RateThresholdDetector

    times = {}
    for engine in ("exact", "batched"):
        topo = TopologySpec("mesh", (4, 4)).build()
        router = RoutingSpec("dor").build(np.random.default_rng(1))
        scheme = MarkingSpec("ddpm").build(np.random.default_rng(2), topo)
        cluster = Cluster(topo, router, marking=scheme, seed=5, engine=engine)
        cluster.fabric.selection = FirstCandidatePolicy()
        victim = cluster.default_victim()
        detector = RateThresholdDetector(window=0.5, threshold_rate=30.0)
        if engine == "batched":
            cluster.fabric.attach_delivery_sink(victim, detector.observe_batch)
        else:
            cluster.fabric.add_delivery_handler(victim, detector.observe)
        cluster.launch_ddos(victim=victim, num_attackers=3,
                            attack_rate_per_node=40.0, duration=1.0)
        cluster.run()
        assert detector.alarm_time is not None, f"{engine}: no alarm raised"
        times[engine] = detector.alarm_time
    # Same packets, same deterministic routes: timing differences can only
    # come from queueing-order details, bounded well under one window.
    assert times["batched"] == pytest.approx(times["exact"], abs=0.1)
