"""Unit tests for walk_route and RouteState."""

import pytest

from repro.errors import LivelockError, RoutingError, UnroutablePacketError
from repro.routing import DimensionOrderRouter, MinimalAdaptiveRouter, walk_route
from repro.routing.base import RouteState
from repro.topology import Mesh

from tests.conftest import first_candidate


class TestRouteState:
    def test_note_hop_tracks_last_and_misroutes(self):
        state = RouteState(9, misroute_budget=2)
        state.note_hop(4, profitable=True)
        assert state.last_node == 4
        assert state.misroutes == 0
        state.note_hop(5, profitable=False)
        assert state.misroutes == 1

    def test_scratch_is_per_state(self):
        a, b = RouteState(1), RouteState(1)
        a.scratch["x"] = 1
        assert "x" not in b.scratch


class TestWalkRoute:
    def test_trivial_src_equals_dst(self, mesh44):
        assert walk_route(mesh44, DimensionOrderRouter(), 5, 5, first_candidate) == [5]

    def test_on_hop_fires_once_per_hop(self, mesh44):
        hops = []
        path = walk_route(mesh44, DimensionOrderRouter(), 0, 15, first_candidate,
                          on_hop=lambda u, v: hops.append((u, v)))
        assert len(hops) == len(path) - 1
        assert hops == list(zip(path[:-1], path[1:]))

    def test_path_consecutive_nodes_adjacent(self, mesh44):
        path = walk_route(mesh44, MinimalAdaptiveRouter(), 0, 15, first_candidate)
        for u, v in zip(path[:-1], path[1:]):
            assert mesh44.is_neighbor(u, v)

    def test_unroutable_error_carries_context(self, mesh44):
        src = mesh44.index((0, 0))
        mesh44.fail_link(src, mesh44.index((0, 1)))
        mesh44.fail_link(src, mesh44.index((1, 0)))
        with pytest.raises(UnroutablePacketError) as exc_info:
            walk_route(mesh44, DimensionOrderRouter(), src, 15, first_candidate)
        assert exc_info.value.current == src
        assert exc_info.value.destination == 15

    def test_selection_must_return_candidate(self, mesh44):
        with pytest.raises(RoutingError):
            walk_route(mesh44, DimensionOrderRouter(), 0, 15,
                       lambda cands, cur: 99)

    def test_max_hops_livelock(self, mesh44):
        # max_hops below the real distance forces the guard.
        with pytest.raises(LivelockError):
            walk_route(mesh44, DimensionOrderRouter(), 0, 15, first_candidate,
                       max_hops=2)

    def test_default_max_hops_generous(self, mesh44):
        # Default budget is comfortably above the diameter.
        path = walk_route(mesh44, DimensionOrderRouter(), 0, 15, first_candidate)
        assert len(path) - 1 <= 4 * mesh44.diameter() + 16
